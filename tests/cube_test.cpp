// Cube-and-conquer engine tests (src/cube/, cec/cube_cec.h): the verdict,
// every aggregated statistic and the composed proof's exact bytes must be
// identical at 1, 2, 4 and 8 threads; a SAT cube must surface a
// counterexample that replays on the original miter at every thread
// count; and an equivalent verdict's single composed proof must pass the
// in-memory checker, the streaming CPF certifier and lint --werror.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/base/diagnostics.h"
#include "src/base/rng.h"
#include "src/cec/certify.h"
#include "src/cec/cube_cec.h"
#include "src/cec/miter.h"
#include "src/cube/cut_select.h"
#include "src/cube/cubes.h"
#include "src/gen/arith.h"
#include "src/proof/checker.h"
#include "src/proof/lint.h"
#include "src/proofio/reader.h"
#include "src/proofio/writer.h"
#include "src/rewrite/restructure.h"
#include "src/serve/service.h"

namespace cp::cec {
namespace {

using aig::Aig;

cube::CubeOptions cubeConfig(std::uint32_t threads,
                             std::uint32_t cutSize = 4) {
  cube::CubeOptions options;
  options.parallel.numThreads = threads;
  options.cutSize = cutSize;
  return options;
}

Aig restructuredAluMiter() {
  const Aig base = gen::aluVariantA(3);
  Rng rng(7);
  return buildMiter(base, rewrite::restructure(base, rng));
}

Aig mulMiter(std::uint32_t bits) {
  return buildMiter(gen::arrayMultiplier(bits), gen::wallaceMultiplier(bits));
}

/// One engine run with full proof capture: verdict + stats + the exact
/// CPF bytes of the raw composed log (the determinism unit of account).
struct RunCapture {
  CecResult result;
  std::string proofBytes;
};

RunCapture runCube(const Aig& miter, const cube::CubeOptions& options) {
  proof::ProofLog log;
  RunCapture capture;
  capture.result = cubeCheck(miter, options, &log);
  if (capture.result.verdict == Verdict::kEquivalent) {
    std::ostringstream out;
    proofio::writeProof(log, out);
    capture.proofBytes = out.str();
  }
  return capture;
}

/// Every thread-count-invariant statistic (totalSeconds is wall time and
/// exempt by design; everything else must match bit for bit).
void expectSameStats(const CecStats& a, const CecStats& b,
                     std::uint32_t threads) {
  EXPECT_EQ(a.satCalls, b.satCalls) << threads << " threads";
  EXPECT_EQ(a.satUnsat, b.satUnsat) << threads << " threads";
  EXPECT_EQ(a.satSat, b.satSat) << threads << " threads";
  EXPECT_EQ(a.satUndecided, b.satUndecided) << threads << " threads";
  EXPECT_EQ(a.conflicts, b.conflicts) << threads << " threads";
  EXPECT_EQ(a.propagations, b.propagations) << threads << " threads";
  EXPECT_EQ(a.restarts, b.restarts) << threads << " threads";
  EXPECT_EQ(a.proofStructuralSteps, b.proofStructuralSteps)
      << threads << " threads";
  EXPECT_EQ(a.cubeCutSize, b.cubeCutSize) << threads << " threads";
  EXPECT_EQ(a.cubeCount, b.cubeCount) << threads << " threads";
  EXPECT_EQ(a.cubesRefuted, b.cubesRefuted) << threads << " threads";
  EXPECT_EQ(a.cubesPruned, b.cubesPruned) << threads << " threads";
  EXPECT_EQ(a.cubeProbeConflicts, b.cubeProbeConflicts)
      << threads << " threads";
}

void expectDeterministicAcrossThreadCounts(const Aig& miter,
                                           std::uint32_t cutSize) {
  const RunCapture baseline = runCube(miter, cubeConfig(1, cutSize));
  ASSERT_EQ(baseline.result.verdict, Verdict::kEquivalent);
  ASSERT_GT(baseline.result.stats.cubeCount, 1u);
  ASSERT_FALSE(baseline.proofBytes.empty());
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const RunCapture run = runCube(miter, cubeConfig(threads, cutSize));
    EXPECT_EQ(run.result.verdict, baseline.result.verdict)
        << threads << " threads";
    expectSameStats(run.result.stats, baseline.result.stats, threads);
    EXPECT_EQ(run.proofBytes, baseline.proofBytes) << threads << " threads";
  }
}

TEST(CubeOptions, ValidationNamesTheField) {
  cube::CubeOptions options;
  EXPECT_TRUE(options.validate().empty());

  options = cube::CubeOptions();
  options.cutSize = cube::CubeOptions::kMaxCutSize + 1;
  EXPECT_NE(options.validate().find("CubeOptions.cutSize"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.simWords = 0;
  EXPECT_NE(options.validate().find("CubeOptions.simWords"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.probePool = 0;
  EXPECT_NE(options.validate().find("CubeOptions.probePool"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.probeConflictBudget = -1;
  EXPECT_NE(options.validate().find("CubeOptions.probeConflictBudget"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.fullEnumerationLimit = cube::CubeOptions::kMaxFullEnumeration + 1;
  EXPECT_NE(options.validate().find("CubeOptions.fullEnumerationLimit"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.maxCubes = 0;
  EXPECT_NE(options.validate().find("CubeOptions.maxCubes"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.maxCubes = cube::CubeOptions::kMaxMaxCubes + 1;
  EXPECT_NE(options.validate().find("CubeOptions.maxCubes"),
            std::string::npos)
      << options.validate();

  options = cube::CubeOptions();
  options.parallel.batchSize = ParallelOptions::kMaxBatchSize + 1;
  EXPECT_NE(options.validate().find("CubeOptions.parallel"),
            std::string::npos)
      << options.validate();
}

TEST(CubeCut, ExplicitCutIsValidated) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(3),
                               gen::carryLookaheadAdder(3, 3));
  cube::CubeOptions options;
  options.cutNodes = {miter.numNodes()};  // out of range
  EXPECT_THROW((void)cube::selectCut(miter, options), std::invalid_argument);
  options.cutNodes = {0};  // the constant node has no split value
  EXPECT_THROW((void)cube::selectCut(miter, options), std::invalid_argument);
  options.cutNodes = {1, 1};  // duplicate
  EXPECT_THROW((void)cube::selectCut(miter, options), std::invalid_argument);
}

TEST(CubeEngine, DeterministicAcrossThreadCountsOnRestructuredAlu) {
  expectDeterministicAcrossThreadCounts(restructuredAluMiter(),
                                        /*cutSize=*/4);
}

TEST(CubeEngine, DeterministicAcrossThreadCountsOnMul5) {
  expectDeterministicAcrossThreadCounts(mulMiter(5), /*cutSize=*/5);
}

TEST(CubeEngine, SatCubeCounterexampleReplaysAtEveryThreadCount) {
  Aig broken = gen::wallaceMultiplier(4);
  broken.setOutput(2, !broken.output(2));
  const Aig miter = buildMiter(gen::arrayMultiplier(4), broken);
  std::vector<bool> firstModel;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    EngineConfig config;
    config.engine = cubeConfig(threads);
    // checkMiter itself replays the counterexample on the miter and
    // throws if it does not set the output; re-check here regardless.
    const CertifyReport report = checkMiter(miter, config);
    ASSERT_EQ(report.cec.verdict, Verdict::kInequivalent)
        << threads << " threads";
    EXPECT_TRUE(miter.evaluate(report.cec.counterexample).at(0))
        << threads << " threads";
    if (firstModel.empty()) {
      firstModel = report.cec.counterexample;
    } else {
      EXPECT_EQ(report.cec.counterexample, firstModel)
          << threads << " threads";
    }
  }
}

TEST(CubeEngine, ComposedProofPassesAllCheckersOnMul6) {
  const Aig miter = mulMiter(6);
  const std::string path = ::testing::TempDir() + "/cube_mul6.cpf";
  EngineConfig config;
  config.engine = cubeConfig(/*threads=*/0, /*cutSize=*/5);
  config.proofPath = path;
  proof::ProofLog raw;
  const CertifyReport report = checkMiter(miter, config, &raw);
  ASSERT_EQ(report.cec.verdict, Verdict::kEquivalent);
  // proofChecked covers checkProof on the trimmed log (with the miter's
  // CNF as the only admissible axioms) AND the streaming disk replay.
  EXPECT_TRUE(report.proofChecked) << report.check.error;
  EXPECT_TRUE(report.disk.written);
  EXPECT_TRUE(report.disk.checked) << report.disk.check.error;

  // The raw composed log must already be lint-clean under --werror: the
  // composer's memo-dedup means no P103, and every spliced clause sits in
  // the root's cone, so no P102 dead weight either.
  diag::DiagnosticCollector lintSink;
  proof::lint(raw, lintSink);
  EXPECT_FALSE(lintSink.failed(/*werror=*/true));

  // The container's footer carries the cube-metadata section: one span
  // per cube, each a valid clause range of this container.
  ASSERT_FALSE(report.cec.cubeSpans.empty());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  const proofio::ContainerInfo info = proofio::probeProof(in);
  ASSERT_EQ(info.cubeSpans.size(), report.cec.cubeSpans.size());
  for (std::size_t i = 0; i < info.cubeSpans.size(); ++i) {
    EXPECT_EQ(info.cubeSpans[i].literals, report.cec.cubeSpans[i].literals);
    EXPECT_EQ(info.cubeSpans[i].firstClause,
              report.cec.cubeSpans[i].firstClause);
    EXPECT_LE(info.cubeSpans[i].lastClause, info.clauses);
  }
  std::remove(path.c_str());
}

TEST(CubeEngine, EmptyCutFallsBackToOneMonolithicCube) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(4),
                               gen::carrySelectAdder(4, 2));
  const RunCapture run = runCube(miter, cubeConfig(2, /*cutSize=*/0));
  EXPECT_EQ(run.result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(run.result.stats.cubeCutSize, 0u);
  EXPECT_EQ(run.result.stats.cubeCount, 1u);
  EXPECT_FALSE(run.proofBytes.empty());
}

TEST(CubeEngine, ExplicitCutOfPrimaryInputsComposes) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(4),
                               gen::carrySkipAdder(4, 2));
  cube::CubeOptions options = cubeConfig(4);
  // Splitting on primary inputs is the classic (if naive) cube shape:
  // three inputs, eight fully enumerated cubes.
  options.cutNodes = {miter.inputNode(0), miter.inputNode(1),
                      miter.inputNode(2)};
  proof::ProofLog log;
  const CecResult result = cubeCheck(miter, options, &log);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.stats.cubeCutSize, 3u);
  EXPECT_EQ(result.stats.cubeCount, 8u);
  const auto check = proof::checkProof(log);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(CubeEngine, TinyBudgetYieldsUndecidedWithoutAnInvalidProof) {
  cube::CubeOptions options = cubeConfig(2);
  options.cubeConflictBudget = 1;
  options.probeConflictBudget = 0;
  const RunCapture run = runCube(mulMiter(5), options);
  EXPECT_EQ(run.result.verdict, Verdict::kUndecided);
  EXPECT_GT(run.result.stats.satUndecided, 0u);
  EXPECT_TRUE(run.proofBytes.empty());  // no proof claimed, none emitted
}

TEST(CubeEngine, BatchServiceRoutesCubeJobs) {
  serve::ServiceOptions serviceOptions;
  serviceOptions.parallel.numThreads = 2;
  serve::BatchService service(serviceOptions);
  serve::JobOptions jobOptions;
  cube::CubeOptions engine = cubeConfig(/*threads=*/2);
  jobOptions.engine.engine = engine;  // service injects its own pool
  const std::uint64_t id = service.submit(serve::makePairJob(
      "cube_alu", gen::aluVariantA(3), gen::aluVariantB(3), jobOptions));
  const serve::JobRecord record = service.wait(id);
  ASSERT_EQ(record.state, serve::JobState::kDone) << record.error;
  EXPECT_EQ(record.verdict, Verdict::kEquivalent);
  EXPECT_TRUE(record.proofChecked);
  EXPECT_GT(record.stats.cubeCount, 0u);
}

}  // namespace
}  // namespace cp::cec
