#include "src/sat/solver.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/proof/checker.h"

namespace cp::sat {
namespace {

Lit pos(Var v) { return Lit::make(v, false); }
Lit neg(Var v) { return Lit::make(v, true); }

std::vector<Var> makeVars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.newVar());
  return vars;
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.modelValue(v), LBool::kTrue);
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v)}));
  EXPECT_FALSE(s.addClause({neg(v)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, PropagationChain) {
  // (a) (~a|b) (~b|c) (~c|d) forces all true.
  Solver s;
  const auto v = makeVars(s, 4);
  ASSERT_TRUE(s.addClause({pos(v[0])}));
  ASSERT_TRUE(s.addClause({neg(v[0]), pos(v[1])}));
  ASSERT_TRUE(s.addClause({neg(v[1]), pos(v[2])}));
  ASSERT_TRUE(s.addClause({neg(v[2]), pos(v[3])}));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (const Var x : v) EXPECT_EQ(s.modelValue(x), LBool::kTrue);
}

TEST(Solver, TautologyIsIgnored) {
  Solver s;
  const Var v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v), neg(v)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, DuplicateLiteralsCollapse) {
  Solver s;
  const Var v = s.newVar();
  const Var w = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v), pos(v), neg(w), neg(w)}));
  ASSERT_TRUE(s.addClause({neg(v)}));
  // (v | ~w) with v=0 propagates ~w at the root level, so adding (w)
  // reveals the contradiction immediately.
  EXPECT_FALSE(s.addClause({pos(w)}));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, XorChainUnsat) {
  // Encode x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 (odd cycle): UNSAT.
  Solver s;
  const auto v = makeVars(s, 3);
  auto addXor1 = [&](Var a, Var b) {
    ASSERT_TRUE(s.addClause({pos(a), pos(b)}));
    ASSERT_TRUE(s.addClause({neg(a), neg(b)}));
  };
  addXor1(v[0], v[1]);
  addXor1(v[1], v[2]);
  addXor1(v[0], v[2]);
  EXPECT_EQ(s.solve(), LBool::kFalse);
  EXPECT_TRUE(s.conflictClause().empty());  // global, not assumption-based
}

TEST(Solver, PigeonHole32IsUnsat) {
  // 3 pigeons, 2 holes. p[i][j]: pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (auto& x : row) x = s.newVar();
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.addClause({pos(p[i][0]), pos(p[i][1])}));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        ASSERT_TRUE(s.addClause({neg(p[i1][j]), neg(p[i2][j])}));
      }
    }
  }
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const auto v = makeVars(s, 2);
  ASSERT_TRUE(s.addClause({neg(v[0]), pos(v[1])}));  // a -> b
  const Lit assumeAB[2] = {pos(v[0]), neg(v[1])};    // a & ~b
  EXPECT_EQ(s.solve(std::span<const Lit>(assumeAB, 2)), LBool::kFalse);
  // Conflict clause mentions only (negated) assumptions.
  for (const Lit l : s.conflictClause()) {
    EXPECT_TRUE(l == neg(v[0]) || l == pos(v[1]));
  }
  EXPECT_FALSE(s.conflictClause().empty());
  // Solver remains usable and satisfiable afterwards.
  EXPECT_EQ(s.solve(), LBool::kTrue);
  const Lit assumeA[1] = {pos(v[0])};
  EXPECT_EQ(s.solve(std::span<const Lit>(assumeA, 1)), LBool::kTrue);
  EXPECT_EQ(s.modelValue(v[1]), LBool::kTrue);
}

TEST(Solver, AssumptionFalseAtLevelZero) {
  Solver s;
  const Var v = s.newVar();
  ASSERT_TRUE(s.addClause({neg(v)}));
  const Lit assume[1] = {pos(v)};
  EXPECT_EQ(s.solve(std::span<const Lit>(assume, 1)), LBool::kFalse);
  ASSERT_EQ(s.conflictClause().size(), 1u);
  EXPECT_EQ(s.conflictClause()[0], neg(v));
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  const auto v = makeVars(s, 3);
  ASSERT_TRUE(s.addClause({pos(v[0]), pos(v[1])}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  ASSERT_TRUE(s.addClause({neg(v[0])}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.modelValue(v[1]), LBool::kTrue);
  ASSERT_TRUE(s.addClause({neg(v[1]), pos(v[2])}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.modelValue(v[2]), LBool::kTrue);
}

TEST(Solver, SolveLimitedReturnsUndefOnTinyBudget) {
  // A formula that needs some search: 8-pigeon/7-hole.
  Solver s;
  constexpr int P = 8, H = 7;
  Var p[P][H];
  for (auto& row : p) {
    for (auto& x : row) x = s.newVar();
  }
  for (int i = 0; i < P; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < H; ++j) clause.push_back(pos(p[i][j]));
    ASSERT_TRUE(s.addClause(clause));
  }
  for (int j = 0; j < H; ++j) {
    for (int i1 = 0; i1 < P; ++i1) {
      for (int i2 = i1 + 1; i2 < P; ++i2) {
        ASSERT_TRUE(s.addClause({neg(p[i1][j]), neg(p[i2][j])}));
      }
    }
  }
  EXPECT_EQ(s.solveLimited({}, 5), LBool::kUndef);
  // And unlimited finishes with UNSAT.
  EXPECT_EQ(s.solveLimited({}, -1), LBool::kFalse);
}

TEST(Solver, ModelSatisfiesAllClauses) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    Solver s;
    const int numVars = 15;
    const auto vars = makeVars(s, numVars);
    std::vector<std::vector<Lit>> clauses;
    bool consistent = true;
    for (int c = 0; c < 50 && consistent; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(
            Lit::make(vars[rng.below(numVars)], rng.flip()));
      }
      clauses.push_back(clause);
      consistent = s.addClause(clause);
    }
    if (!consistent) continue;
    if (s.solve() != LBool::kTrue) continue;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        satisfied |= s.modelValue(l) == LBool::kTrue;
      }
      EXPECT_TRUE(satisfied);
    }
  }
}

// ---- randomized cross-check against brute force ---------------------------

struct RandomCnfParams {
  int numVars;
  int numClauses;
  int clauseSize;
  std::uint64_t seed;
};

class SolverRandomCross : public testing::TestWithParam<RandomCnfParams> {};

bool bruteForceSat(int numVars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t assignment = 0; assignment < (1u << numVars);
       ++assignment) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) {
        const bool value = ((assignment >> l.var()) & 1) != 0;
        any |= (value != l.negated());
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST_P(SolverRandomCross, AgreesWithBruteForceAndProvesUnsat) {
  const auto param = GetParam();
  Rng rng(param.seed);
  for (int round = 0; round < 40; ++round) {
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < param.numClauses; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < param.clauseSize; ++k) {
        clause.push_back(Lit::make(
            static_cast<Var>(rng.below(param.numVars)), rng.flip()));
      }
      clauses.push_back(clause);
    }
    const bool expected = bruteForceSat(param.numVars, clauses);

    proof::ProofLog log;
    Solver s(&log);
    for (int i = 0; i < param.numVars; ++i) (void)s.newVar();
    bool consistent = true;
    for (const auto& clause : clauses) {
      consistent = s.addClause(clause);
      if (!consistent) break;
    }
    const LBool verdict =
        consistent ? s.solve() : LBool::kFalse;
    EXPECT_EQ(verdict == LBool::kTrue, expected)
        << "round " << round << " seed " << param.seed;

    if (verdict == LBool::kFalse) {
      // Every UNSAT must carry a checkable refutation.
      ASSERT_TRUE(log.hasRoot());
      const auto check = proof::checkProof(log);
      EXPECT_TRUE(check.ok) << check.error;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverRandomCross,
    testing::Values(RandomCnfParams{6, 30, 2, 11},   // dense 2-SAT: mostly UNSAT
                    RandomCnfParams{8, 35, 3, 22},   // near threshold
                    RandomCnfParams{10, 44, 3, 33},  // ~4.4 ratio
                    RandomCnfParams{12, 40, 3, 44},  // mostly SAT
                    RandomCnfParams{9, 60, 3, 55},   // over-constrained
                    RandomCnfParams{7, 50, 2, 66},
                    RandomCnfParams{14, 56, 4, 77},
                    RandomCnfParams{5, 40, 3, 88}));

}  // namespace
}  // namespace cp::sat
