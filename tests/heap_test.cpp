#include "src/sat/heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/base/rng.h"

namespace cp::sat {
namespace {

TEST(VarOrderHeap, ExtractsInActivityOrder) {
  std::vector<double> activity = {1.0, 5.0, 3.0, 4.0, 2.0};
  VarOrderHeap heap(activity);
  for (Var v = 0; v < 5; ++v) heap.insert(v);
  std::vector<Var> order;
  while (!heap.empty()) order.push_back(heap.extractMax());
  const std::vector<Var> expected = {1, 3, 2, 4, 0};
  EXPECT_EQ(order, expected);
}

TEST(VarOrderHeap, DuplicateInsertIsIgnored) {
  std::vector<double> activity = {1.0, 2.0};
  VarOrderHeap heap(activity);
  heap.insert(0);
  heap.insert(0);
  heap.insert(1);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(VarOrderHeap, IncreasedRestoresOrder) {
  std::vector<double> activity = {1.0, 2.0, 3.0};
  VarOrderHeap heap(activity);
  for (Var v = 0; v < 3; ++v) heap.insert(v);
  activity[0] = 10.0;
  heap.increased(0);
  EXPECT_EQ(heap.extractMax(), 0u);
  EXPECT_EQ(heap.extractMax(), 2u);
  EXPECT_EQ(heap.extractMax(), 1u);
}

TEST(VarOrderHeap, ContainsTracksMembership) {
  std::vector<double> activity = {1.0, 2.0};
  VarOrderHeap heap(activity);
  EXPECT_FALSE(heap.contains(0));
  heap.insert(0);
  EXPECT_TRUE(heap.contains(0));
  (void)heap.extractMax();
  EXPECT_FALSE(heap.contains(0));
}

TEST(VarOrderHeap, RandomizedAgainstSort) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    const int n = 1 + static_cast<int>(rng.below(60));
    std::vector<double> activity(n);
    for (auto& a : activity) a = double(rng.below(1000000));
    VarOrderHeap heap(activity);
    std::vector<Var> vars;
    for (Var v = 0; v < static_cast<Var>(n); ++v) {
      if (rng.flip()) {
        heap.insert(v);
        vars.push_back(v);
      }
    }
    // Random activity bumps.
    for (int b = 0; b < n / 2; ++b) {
      const Var v = static_cast<Var>(rng.below(n));
      activity[v] += double(rng.below(1000000));
      heap.increased(v);
    }
    std::sort(vars.begin(), vars.end(), [&](Var a, Var b) {
      if (activity[a] != activity[b]) return activity[a] > activity[b];
      return a < b;
    });
    std::vector<Var> extracted;
    while (!heap.empty()) extracted.push_back(heap.extractMax());
    ASSERT_EQ(extracted.size(), vars.size());
    // Activities may tie; compare the activity sequence, which must be
    // non-increasing and a permutation match.
    for (std::size_t i = 0; i + 1 < extracted.size(); ++i) {
      EXPECT_GE(activity[extracted[i]], activity[extracted[i + 1]]);
    }
    std::vector<Var> sortedExtract(extracted);
    std::sort(sortedExtract.begin(), sortedExtract.end());
    std::vector<Var> sortedVars(vars);
    std::sort(sortedVars.begin(), sortedVars.end());
    EXPECT_EQ(sortedExtract, sortedVars);
  }
}

}  // namespace
}  // namespace cp::sat
