// Tests for the analysis:: dataflow substrate (dag.h / dataflow.h): CSR
// construction, levelization, the three artifact builders cross-checked
// against the independent walkers they mirror (aig::Aig::levels,
// proof::reachableFromRoot), the worklist fixpoint, and the determinism
// contract of parallelLevelSweep at 1/2/4/8 threads, with an injected
// pool, and nested on a pool worker.
#include "src/analysis/dataflow.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/dag.h"
#include "src/base/thread_pool.h"
#include "src/cnf/cnf.h"
#include "src/gen/arith.h"
#include "src/proof/analysis.h"
#include "src/proof/proof_log.h"
#include "src/sat/types.h"

namespace cp::analysis {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::vector<std::uint32_t> toVector(std::span<const std::uint32_t> s) {
  return {s.begin(), s.end()};
}

TEST(Dag, BuildsSortedDeduplicatedCsr) {
  // Duplicate edge (0,2) collapses; neighbor spans come out ascending.
  const Dag dag = Dag::fromEdges(4, {{2, 3}, {0, 2}, {1, 2}, {0, 2}, {0, 1}});
  EXPECT_EQ(dag.numNodes(), 4u);
  EXPECT_EQ(dag.numEdges(), 4u);
  EXPECT_EQ(toVector(dag.succs(0)), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(toVector(dag.preds(2)), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(toVector(dag.preds(0)), std::vector<std::uint32_t>{});
  EXPECT_EQ(toVector(dag.succs(3)), std::vector<std::uint32_t>{});
}

TEST(Dag, RejectsOutOfRangeAndSelfLoopEdges) {
  EXPECT_THROW(Dag::fromEdges(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(Dag::fromEdges(2, {{1, 1}}), std::invalid_argument);
}

TEST(Dag, LevelizeIsLongestPath) {
  // Diamond with a long arm: 0 -> {1, 2}, 1 -> 3, 2 -> 4 -> 3.
  const Dag dag = Dag::fromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 3}});
  const std::vector<std::uint32_t> levels = levelize(dag);
  EXPECT_EQ(levels, (std::vector<std::uint32_t>{0, 1, 1, 3, 2}));

  const auto groups = levelGroups(dag);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], std::vector<std::uint32_t>{0});
  EXPECT_EQ(groups[1], (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(groups[2], std::vector<std::uint32_t>{4});
  EXPECT_EQ(groups[3], std::vector<std::uint32_t>{3});
}

TEST(Dag, LevelizeThrowsOnCycle) {
  const Dag cyclic = Dag::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_THROW(levelize(cyclic), std::invalid_argument);
}

TEST(Dag, AigDagLevelsMatchAigLevels) {
  // The builder's levelization must agree with the AIG's own independent
  // depth computation on a real arithmetic circuit.
  const aig::Aig g = gen::carryLookaheadAdder(6, 3);
  const Dag dag = aigDag(g);
  ASSERT_EQ(dag.numNodes(), g.numNodes());
  EXPECT_EQ(levelize(dag), g.levels());
}

TEST(Dag, ProofDagReachabilityMatchesProofCone) {
  // (x), (~x | y), (~y) |- {} via two resolution steps, plus one clause
  // ((z)) the root never touches.
  proof::ProofLog log;
  using sat::Lit;
  const auto x = Lit::make(0, false);
  const auto y = Lit::make(1, false);
  const auto z = Lit::make(2, false);
  const auto a1 = log.addAxiom(std::vector<Lit>{x});
  const auto a2 = log.addAxiom(std::vector<Lit>{~x, y});
  const auto a3 = log.addAxiom(std::vector<Lit>{~y});
  const auto dead = log.addAxiom(std::vector<Lit>{z});
  const auto d1 =
      log.addDerived(std::vector<Lit>{y}, std::vector<proof::ClauseId>{a1, a2});
  const auto root =
      log.addDerived(std::vector<Lit>{}, std::vector<proof::ClauseId>{d1, a3});
  log.setRoot(root);

  const Dag dag = proofDag(log);
  ASSERT_EQ(dag.numNodes(), log.numClauses() + 1);
  const std::vector<std::uint32_t> roots{root};
  const std::vector<char> cone = reachable(dag, roots, Direction::kBackward);
  EXPECT_EQ(cone, proof::reachableFromRoot(log));
  EXPECT_EQ(cone[dead], 0);
  EXPECT_EQ(cone[a1], 1);
}

TEST(Dag, ClauseVarDagConnectsOccurrences) {
  using sat::Lit;
  const std::vector<std::vector<Lit>> clauses = {
      {Lit::make(0, false), Lit::make(1, true)},
      {Lit::make(1, false)},
  };
  const Dag dag = clauseVarDag(3, clauses);
  ASSERT_EQ(dag.numNodes(), 5u);  // 3 vars + 2 clauses
  EXPECT_EQ(toVector(dag.succs(1)),
            (std::vector<std::uint32_t>{clauseNode(3, 0), clauseNode(3, 1)}));
  EXPECT_EQ(toVector(dag.preds(clauseNode(3, 0))),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(toVector(dag.succs(2)), std::vector<std::uint32_t>{});

  const std::vector<std::vector<Lit>> bad = {{Lit::make(3, false)}};
  EXPECT_THROW(clauseVarDag(3, bad), std::invalid_argument);
}

TEST(Dataflow, SolveReachesForwardFixpoint) {
  // Longest-path distance as a forward dataflow problem: the fixpoint must
  // equal levelize() even though the transfer is evaluated iteratively.
  const Dag dag = Dag::fromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 3}});
  const auto facts = solve(
      dag, Direction::kForward, std::vector<std::uint32_t>(5, 0),
      [&dag](std::uint32_t node, const std::vector<std::uint32_t>& f) {
        std::uint32_t level = 0;
        for (const std::uint32_t p : dag.preds(node)) {
          level = std::max(level, f[p] + 1);
        }
        return level;
      });
  EXPECT_EQ(facts, levelize(dag));
}

TEST(Dataflow, SolveReachesBackwardFixpoint) {
  // Liveness-style: a node is "live" iff it reaches node 3.
  const Dag dag = Dag::fromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  const auto live = solve(
      dag, Direction::kBackward, std::vector<char>(5, 0),
      [&dag](std::uint32_t node, const std::vector<char>& f) -> char {
        if (node == 3) return 1;
        for (const std::uint32_t s : dag.succs(node)) {
          if (f[s] != 0) return 1;
        }
        return 0;
      });
  EXPECT_EQ(live, (std::vector<char>{1, 1, 0, 1, 0}));
}

TEST(Dataflow, SolveRejectsWrongFactsSize) {
  const Dag dag = Dag::fromEdges(2, {{0, 1}});
  EXPECT_THROW(
      solve(dag, Direction::kForward, std::vector<int>(3, 0),
            [](std::uint32_t, const std::vector<int>&) { return 0; }),
      std::invalid_argument);
}

TEST(Dataflow, ReachableIncludesRootsAndValidates) {
  const Dag dag = Dag::fromEdges(4, {{0, 1}, {1, 2}});
  const std::vector<std::uint32_t> roots{1};
  const std::vector<char> fwd = reachable(dag, roots, Direction::kForward);
  EXPECT_EQ(fwd, (std::vector<char>{0, 1, 1, 0}));
  const std::vector<char> bwd = reachable(dag, roots, Direction::kBackward);
  EXPECT_EQ(bwd, (std::vector<char>{1, 1, 0, 0}));
  const std::vector<std::uint32_t> bad{4};
  EXPECT_THROW(reachable(dag, bad, Direction::kForward),
               std::invalid_argument);
}

/// Runs the level sweep over a real circuit graph computing each node's
/// level into a node-owned slot (the determinism contract), and returns
/// the slots plus a visit counter total.
std::vector<std::uint32_t> sweepLevels(const aig::Aig& g,
                                       const SweepOptions& options,
                                       std::uint64_t* visits = nullptr) {
  const Dag dag = aigDag(g);
  std::vector<std::uint32_t> level(dag.numNodes(), 0);
  std::atomic<std::uint64_t> count{0};
  parallelLevelSweep(dag, options, [&](std::uint32_t node) {
    std::uint32_t l = 0;
    for (const std::uint32_t p : dag.preds(node)) {
      l = std::max(l, level[p] + 1);  // predecessors' level already done
    }
    level[node] = l;
    count.fetch_add(1, std::memory_order_relaxed);
  });
  if (visits != nullptr) *visits = count.load();
  return level;
}

TEST(Dataflow, ParallelLevelSweepIsThreadCountInvariant) {
  const aig::Aig g = gen::wallaceMultiplier(4);
  SweepOptions base;
  base.parallel.batchSize = 8;  // small slices so helpers really run
  std::uint64_t visits = 0;
  base.parallel.numThreads = 1;
  const std::vector<std::uint32_t> reference = sweepLevels(g, base, &visits);
  EXPECT_EQ(reference, g.levels());
  EXPECT_EQ(visits, g.numNodes());
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    SweepOptions options = base;
    options.parallel.numThreads = threads;
    std::uint64_t n = 0;
    EXPECT_EQ(sweepLevels(g, options, &n), reference)
        << "divergence at " << threads << " threads";
    EXPECT_EQ(n, g.numNodes());
  }
}

TEST(Dataflow, ParallelLevelSweepSharesInjectedPool) {
  const aig::Aig g = gen::rippleCarryAdder(8);
  ThreadPool pool(2);
  SweepOptions options;
  options.parallel.numThreads = 4;
  options.parallel.batchSize = 4;
  options.pool = &pool;
  EXPECT_EQ(sweepLevels(g, options), g.levels());
}

TEST(Dataflow, ParallelLevelSweepNestsOnPoolWorker) {
  // A sweep launched from a task already running on the pool must drain
  // without deadlock even when the pool has a single worker (the batch
  // service runs audits exactly like this).
  const aig::Aig g = gen::parityTree(10);
  ThreadPool pool(1);
  auto future = pool.submit(0, [&] {
    SweepOptions options;
    options.parallel.numThreads = 4;
    options.parallel.batchSize = 4;
    options.pool = &pool;
    return sweepLevels(g, options);
  });
  EXPECT_EQ(future.get(), g.levels());
}

TEST(Dataflow, ParallelLevelSweepPropagatesVisitorExceptions) {
  const Dag dag = Dag::fromEdges(3, {{0, 1}, {1, 2}});
  SweepOptions options;
  options.parallel.numThreads = 2;
  EXPECT_THROW(parallelLevelSweep(dag, options,
                                  [](std::uint32_t node) {
                                    if (node == 2) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

TEST(Dataflow, SweepOptionsValidateRejectsOversizedBatch) {
  SweepOptions options;
  options.parallel.batchSize = ParallelOptions::kMaxBatchSize + 1;
  EXPECT_FALSE(options.validate().empty());
  const Dag dag = Dag::fromEdges(1, {});
  EXPECT_THROW(parallelLevelSweep(dag, options, [](std::uint32_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cp::analysis
