// Differential testing: three independent decision procedures (brute-force
// enumeration, BDD canonicity, monolithic SAT, certified SAT sweeping)
// must agree on every workload, including randomly injected faults that
// may or may not change the function.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cec/bdd_cec.h"
#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/cec/monolithic_cec.h"
#include "src/cec/sweeping_cec.h"
#include "src/gen/arith.h"
#include "src/gen/misc_logic.h"
#include "src/gen/random_aig.h"

namespace cp::cec {
namespace {

using aig::Aig;
using aig::Edge;

bool bruteForceEquivalent(const Aig& a, const Aig& b) {
  for (std::uint64_t bits = 0; bits < (1ULL << a.numInputs()); ++bits) {
    std::vector<bool> in(a.numInputs());
    for (std::uint32_t i = 0; i < a.numInputs(); ++i) {
      in[i] = (bits >> i) & 1;
    }
    if (a.evaluate(in) != b.evaluate(in)) return false;
  }
  return true;
}

/// Copies `g` flipping the polarity of one random AND fanin -- a fault
/// that may or may not be observable at the outputs.
Aig injectRandomFault(const Aig& g, Rng& rng) {
  std::vector<std::uint32_t> andNodes;
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    if (g.isAnd(n)) andNodes.push_back(n);
  }
  if (andNodes.empty()) return g;
  const std::uint32_t victim =
      andNodes[rng.below(andNodes.size())];
  const bool flipFanin0 = rng.flip();

  Aig out;
  std::vector<Edge> image(g.numNodes(), Edge());
  image[0] = aig::kFalse;
  for (std::uint32_t i = 0; i < g.numInputs(); ++i) {
    image[g.inputNode(i)] = out.addInput();
  }
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    if (!g.isAnd(n)) continue;
    Edge a = g.fanin0(n);
    Edge b = g.fanin1(n);
    if (n == victim) {
      if (flipFanin0) a = !a;
      else b = !b;
    }
    image[n] = out.addAnd(image[a.node()] ^ a.complemented(),
                          image[b.node()] ^ b.complemented());
  }
  for (const Edge e : g.outputs()) {
    out.addOutput(image[e.node()] ^ e.complemented());
  }
  return out;
}

void crossCheck(const Aig& left, const Aig& right, const char* what) {
  const bool expected = bruteForceEquivalent(left, right);
  const Verdict want =
      expected ? Verdict::kEquivalent : Verdict::kInequivalent;

  const Aig miter = buildMiter(left, right);
  // Engine 1: monolithic SAT.
  EXPECT_EQ(monolithicCheck(miter).verdict, want) << what;
  // Engine 2: certified sweeping (with proof check on equivalence).
  const CertifyReport report = checkMiter(miter);
  EXPECT_EQ(report.cec.verdict, want) << what;
  if (want == Verdict::kEquivalent) {
    EXPECT_TRUE(report.proofChecked) << what << ": " << report.check.error;
  }
  // Engine 3: BDD canonicity.
  EXPECT_EQ(bddCheck(left, right).verdict, want) << what;
}

TEST(Differential, FaultedAddersAcrossSeeds) {
  const Aig golden = gen::rippleCarryAdder(4);
  Rng rng(101);
  int observable = 0;
  for (int round = 0; round < 12; ++round) {
    const Aig faulted = injectRandomFault(golden, rng);
    if (!bruteForceEquivalent(golden, faulted)) ++observable;
    crossCheck(golden, faulted, "faulted adder");
  }
  EXPECT_GT(observable, 6);  // most single-polarity faults are observable
}

TEST(Differential, FaultedMajority) {
  const Aig golden = gen::majorityViaThreshold(7);
  Rng rng(102);
  for (int round = 0; round < 10; ++round) {
    crossCheck(golden, injectRandomFault(golden, rng), "faulted majority");
  }
}

TEST(Differential, FaultedRandomGraphs) {
  Rng rng(103);
  for (int round = 0; round < 10; ++round) {
    gen::RandomAigOptions opt;
    opt.numInputs = 6;
    opt.numAnds = 50;
    opt.numOutputs = 2;
    const Aig g = gen::randomAig(opt, rng);
    crossCheck(g, injectRandomFault(g, rng), "faulted random graph");
  }
}

TEST(Differential, CleanPairsAllFamilies) {
  crossCheck(gen::rippleCarryAdder(4), gen::carrySelectAdder(4, 2),
             "adders");
  crossCheck(gen::arrayMultiplier(3), gen::carrySaveMultiplier(3),
             "multipliers");
  crossCheck(gen::popcountChain(6), gen::popcountTree(6), "popcount");
  crossCheck(gen::priorityEncoderChain(8), gen::priorityEncoderTree(8),
             "priority encoders");
}

}  // namespace
}  // namespace cp::cec
