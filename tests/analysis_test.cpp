#include "src/proof/analysis.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/cec/sweeping_cec.h"
#include "src/gen/arith.h"
#include "src/sat/solver.h"

namespace cp::proof {
namespace {

using sat::Lit;

Lit pos(sat::Var v) { return Lit::make(v, false); }
Lit neg(sat::Var v) { return Lit::make(v, true); }

ProofLog chainedRefutation() {
  // (a)(~a|b)(~b|c)(~c) |- () with one unused axiom.
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  const ClauseId bc = log.addAxiom(std::array<Lit, 2>{neg(1), pos(2)});
  const ClauseId nc = log.addAxiom(std::array<Lit, 1>{neg(2)});
  (void)log.addAxiom(std::array<Lit, 1>{pos(9)});  // unused
  const ClauseId b =
      log.addDerived(std::array<Lit, 1>{pos(1)}, std::array<ClauseId, 2>{a, ab});
  const ClauseId c =
      log.addDerived(std::array<Lit, 1>{pos(2)}, std::array<ClauseId, 2>{b, bc});
  const ClauseId empty =
      log.addDerived(std::span<const Lit>{}, std::array<ClauseId, 2>{c, nc});
  log.setRoot(empty);
  return log;
}

TEST(UnsatCore, ContainsExactlyTheNeededAxioms) {
  const ProofLog log = chainedRefutation();
  const auto core = unsatCore(log);
  EXPECT_EQ(core.size(), 4u);  // all but the unused axiom
  for (const ClauseId id : core) {
    EXPECT_TRUE(log.isAxiom(id));
    EXPECT_NE(id, 5u);  // the unused axiom
  }
}

TEST(UnsatCore, RequiresRoot) {
  ProofLog log;
  (void)log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW((void)unsatCore(log), std::invalid_argument);
}

TEST(UnsatCore, SolverCoreIsUnsatOnItsOwn) {
  // Build an UNSAT instance with satisfiable padding; re-solving only the
  // core must still be UNSAT.
  ProofLog log;
  sat::Solver solver(&log);
  for (int i = 0; i < 8; ++i) (void)solver.newVar();
  std::vector<std::vector<Lit>> clauses = {
      {pos(0), pos(1)}, {pos(0), neg(1)}, {neg(0), pos(2)}, {neg(0), neg(2)},
      // Padding over other variables (satisfiable on its own).
      {pos(3), pos(4)}, {neg(4), pos(5)}, {pos(6), neg(7)},
  };
  bool consistent = true;
  for (const auto& cl : clauses) {
    consistent = solver.addClause(cl);
    if (!consistent) break;
  }
  const auto verdict =
      consistent ? solver.solve() : sat::LBool::kFalse;
  ASSERT_EQ(verdict, sat::LBool::kFalse);
  const auto core = unsatCore(log);
  ASSERT_FALSE(core.empty());

  sat::Solver replay;
  for (int i = 0; i < 8; ++i) (void)replay.newVar();
  bool replayConsistent = true;
  for (const ClauseId id : core) {
    replayConsistent = replay.addClause(std::vector<Lit>(
        log.lits(id).begin(), log.lits(id).end()));
    if (!replayConsistent) break;
  }
  EXPECT_EQ(replayConsistent ? replay.solve() : sat::LBool::kFalse,
            sat::LBool::kFalse);
}

TEST(ProofMetrics, ChainedRefutation) {
  const ProofLog log = chainedRefutation();
  const ProofMetrics m = analyzeProof(log);
  EXPECT_EQ(m.axioms, 5u);
  EXPECT_EQ(m.derived, 3u);
  EXPECT_EQ(m.resolutions, 3u);
  EXPECT_EQ(m.coreAxioms, 4u);
  EXPECT_EQ(m.coreDerived, 3u);
  EXPECT_EQ(m.dagDepth, 3u);  // a -> b -> c -> empty
  EXPECT_EQ(m.maxClauseWidth, 2u);
  EXPECT_EQ(m.maxChainLength, 2u);
}

TEST(ProofMetrics, CecProofHasSaneShape) {
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(6),
                                         gen::carryLookaheadAdder(6, 3));
  ProofLog log;
  const auto result = cec::sweepingCheck(miter, cec::SweepOptions(), &log);
  ASSERT_EQ(result.verdict, cec::Verdict::kEquivalent);
  const ProofMetrics m = analyzeProof(log);
  EXPECT_GT(m.dagDepth, 2u);
  EXPECT_GE(m.coreAxioms, 1u);
  EXPECT_LE(m.coreAxioms, m.axioms);
  EXPECT_GT(m.avgClauseWidth, 0.0);
  EXPECT_GE(m.maxChainLength, 2u);
}

TEST(UnsatCore, CecCoreIsSmallForLocalFault)
{
  // A miter whose refutation should not need every axiom: sweeping proves
  // output equivalence through a subset of the circuit.
  const aig::Aig miter = cec::buildMiter(gen::parityChain(12),
                                         gen::parityTree(12));
  ProofLog log;
  const auto result = cec::sweepingCheck(miter, cec::SweepOptions(), &log);
  ASSERT_EQ(result.verdict, cec::Verdict::kEquivalent);
  const auto core = unsatCore(log);
  EXPECT_LT(core.size(), log.numAxioms());
}

TEST(Levelize, PartitionsByChainDepthWithAntecedentsBelow) {
  const ProofLog log = chainedRefutation();
  const auto levels = levelizeByChainDepth(log);
  // Axioms at level 0; the derivation chain b -> c -> empty spreads one
  // clause per level.
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], (std::vector<ClauseId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(levels[1], (std::vector<ClauseId>{6}));
  EXPECT_EQ(levels[2], (std::vector<ClauseId>{7}));
  EXPECT_EQ(levels[3], (std::vector<ClauseId>{8}));
}

TEST(Levelize, NeededMaskDropsUnreachableClauses) {
  const ProofLog log = chainedRefutation();
  const std::vector<char> needed = reachableFromRoot(log);
  const auto levels = levelizeByChainDepth(log, &needed);
  ASSERT_EQ(levels.size(), 4u);
  // The unused axiom (id 5) is outside the root's cone.
  EXPECT_EQ(levels[0], (std::vector<ClauseId>{1, 2, 3, 4}));
}

TEST(Levelize, RejectsWrongMaskSize) {
  const ProofLog log = chainedRefutation();
  const std::vector<char> tooSmall(log.numClauses(), 1);
  EXPECT_THROW((void)levelizeByChainDepth(log, &tooSmall),
               std::invalid_argument);
}

TEST(Levelize, EveryAntecedentLivesInAStrictlySmallerLevel) {
  // The invariant the parallel checker's batch replay rests on, verified
  // on a real sweeping proof.
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(5),
                                         gen::carryLookaheadAdder(5, 2));
  ProofLog log;
  const auto result = cec::sweepingCheck(miter, cec::SweepOptions(), &log);
  ASSERT_EQ(result.verdict, cec::Verdict::kEquivalent);
  const auto levels = levelizeByChainDepth(log);
  std::vector<std::size_t> levelOf(log.numClauses() + 1, 0);
  std::size_t placed = 0;
  for (std::size_t d = 0; d < levels.size(); ++d) {
    for (const ClauseId id : levels[d]) {
      levelOf[id] = d;
      ++placed;
    }
  }
  EXPECT_EQ(placed, log.numClauses());
  for (ClauseId id = 1; id <= log.numClauses(); ++id) {
    for (const ClauseId parent : log.chain(id)) {
      EXPECT_LT(levelOf[parent], levelOf[id]) << "clause " << id;
    }
  }
}

TEST(Drat, EmitsOneLinePerDerivedClause) {
  const ProofLog log = chainedRefutation();
  std::stringstream ss;
  writeDrat(log, ss);
  int lines = 0;
  std::string line;
  std::string last;
  while (std::getline(ss, line)) {
    if (!line.empty()) {
      ++lines;
      last = line;
    }
  }
  EXPECT_EQ(lines, 3);
  // The last addition is the empty clause: just "0".
  EXPECT_EQ(last, "0");
}

}  // namespace
}  // namespace cp::proof
