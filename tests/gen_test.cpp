// Functional correctness of every circuit generator against reference
// integer arithmetic, exhaustively for small widths and randomly sampled
// for larger ones.
#include "src/gen/arith.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/gen/random_aig.h"

namespace cp::gen {
namespace {

using aig::Aig;

std::vector<bool> toBits(std::uint64_t value, std::uint32_t width) {
  std::vector<bool> bits(width);
  for (std::uint32_t i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

std::uint64_t fromBits(const std::vector<bool>& bits, std::size_t offset,
                       std::size_t count) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value |= static_cast<std::uint64_t>(bits[offset + i]) << i;
  }
  return value;
}

std::vector<bool> concat(const std::vector<bool>& a,
                         const std::vector<bool>& b) {
  std::vector<bool> all(a);
  all.insert(all.end(), b.begin(), b.end());
  return all;
}

// ---- adders ----------------------------------------------------------------

struct AdderCase {
  const char* name;
  Aig (*build)(std::uint32_t, std::uint32_t);
  std::uint32_t width;
  std::uint32_t block;
};

Aig buildRipple(std::uint32_t w, std::uint32_t) { return rippleCarryAdder(w); }

class AdderCorrectness : public testing::TestWithParam<AdderCase> {};

TEST_P(AdderCorrectness, MatchesIntegerAddition) {
  const auto& param = GetParam();
  const Aig g = param.build(param.width, param.block);
  ASSERT_EQ(g.numInputs(), 2 * param.width);
  ASSERT_EQ(g.numOutputs(), param.width + 1);

  Rng rng(31);
  const std::uint64_t mask = (param.width == 64)
                                 ? ~0ULL
                                 : ((1ULL << param.width) - 1);
  const int samples = param.width <= 4 ? -1 : 300;  // -1 = exhaustive
  auto checkOne = [&](std::uint64_t a, std::uint64_t b) {
    const auto out = g.evaluate(
        concat(toBits(a, param.width), toBits(b, param.width)));
    const std::uint64_t sum = fromBits(out, 0, param.width);
    const bool carry = out[param.width];
    const std::uint64_t expected = a + b;
    EXPECT_EQ(sum, expected & mask) << a << "+" << b;
    EXPECT_EQ(carry, ((expected >> param.width) & 1) != 0);
  };
  if (samples < 0) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) checkOne(a, b);
    }
  } else {
    for (int i = 0; i < samples; ++i) {
      checkOne(rng.next64() & mask, rng.next64() & mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, AdderCorrectness,
    testing::Values(
        AdderCase{"ripple4", buildRipple, 4, 0},
        AdderCase{"ripple13", buildRipple, 13, 0},
        AdderCase{"cla3", carryLookaheadAdder, 3, 4},
        AdderCase{"cla16b4", carryLookaheadAdder, 16, 4},
        AdderCase{"cla17b5", carryLookaheadAdder, 17, 5},
        AdderCase{"csel4", carrySelectAdder, 4, 2},
        AdderCase{"csel16b4", carrySelectAdder, 16, 4},
        AdderCase{"csel15b6", carrySelectAdder, 15, 6},
        AdderCase{"cskip4", carrySkipAdder, 4, 2},
        AdderCase{"cskip16b4", carrySkipAdder, 16, 4},
        AdderCase{"cskip14b3", carrySkipAdder, 14, 3}),
    [](const auto& info) { return info.param.name; });

// ---- multipliers -----------------------------------------------------------

struct MultCase {
  const char* name;
  Aig (*build)(std::uint32_t);
  std::uint32_t width;
};

class MultiplierCorrectness : public testing::TestWithParam<MultCase> {};

TEST_P(MultiplierCorrectness, MatchesIntegerMultiplication) {
  const auto& param = GetParam();
  const Aig g = param.build(param.width);
  ASSERT_EQ(g.numInputs(), 2 * param.width);
  ASSERT_EQ(g.numOutputs(), 2 * param.width);

  const std::uint64_t mask = (1ULL << param.width) - 1;
  Rng rng(32);
  auto checkOne = [&](std::uint64_t a, std::uint64_t b) {
    const auto out = g.evaluate(
        concat(toBits(a, param.width), toBits(b, param.width)));
    EXPECT_EQ(fromBits(out, 0, 2 * param.width), a * b) << a << "*" << b;
  };
  if (param.width <= 3) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) checkOne(a, b);
    }
  } else {
    for (int i = 0; i < 200; ++i) {
      checkOne(rng.next64() & mask, rng.next64() & mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MultiplierCorrectness,
    testing::Values(MultCase{"array2", arrayMultiplier, 2},
                    MultCase{"array3", arrayMultiplier, 3},
                    MultCase{"array8", arrayMultiplier, 8},
                    MultCase{"wallace2", wallaceMultiplier, 2},
                    MultCase{"wallace3", wallaceMultiplier, 3},
                    MultCase{"wallace8", wallaceMultiplier, 8},
                    MultCase{"wallace11", wallaceMultiplier, 11}),
    [](const auto& info) { return info.param.name; });

// ---- comparators, parity, shifter, ALU -------------------------------------

TEST(Comparators, BothVariantsMatchUnsignedLess) {
  for (std::uint32_t width : {1u, 3u, 4u, 9u}) {
    const Aig ripple = rippleComparator(width);
    const Aig tree = treeComparator(width);
    Rng rng(33);
    const std::uint64_t mask = (1ULL << width) - 1;
    const int samples = width <= 4 ? -1 : 400;
    auto check = [&](std::uint64_t a, std::uint64_t b) {
      const auto in = concat(toBits(a, width), toBits(b, width));
      EXPECT_EQ(ripple.evaluate(in)[0], a < b) << width << ":" << a << "<" << b;
      EXPECT_EQ(tree.evaluate(in)[0], a < b) << width << ":" << a << "<" << b;
    };
    if (samples < 0) {
      for (std::uint64_t a = 0; a <= mask; ++a) {
        for (std::uint64_t b = 0; b <= mask; ++b) check(a, b);
      }
    } else {
      for (int i = 0; i < samples; ++i) {
        check(rng.next64() & mask, rng.next64() & mask);
      }
    }
  }
}

TEST(Parity, BothVariantsMatchPopcountParity) {
  for (std::uint32_t width : {1u, 2u, 5u, 8u, 13u}) {
    const Aig chain = parityChain(width);
    const Aig tree = parityTree(width);
    const std::uint64_t limit = width <= 10 ? (1ULL << width) : 1024;
    Rng rng(34);
    for (std::uint64_t k = 0; k < limit; ++k) {
      const std::uint64_t x =
          width <= 10 ? k : (rng.next64() & ((1ULL << width) - 1));
      const auto in = toBits(x, width);
      const bool expected = __builtin_parityll(x);
      EXPECT_EQ(chain.evaluate(in)[0], expected);
      EXPECT_EQ(tree.evaluate(in)[0], expected);
    }
  }
}

TEST(BarrelShifter, BothStageOrdersShiftLeft) {
  for (std::uint32_t width : {2u, 4u, 8u}) {
    const Aig lsb = barrelShifterLsbFirst(width);
    const Aig msb = barrelShifterMsbFirst(width);
    std::uint32_t stages = 0;
    while ((1u << stages) < width) ++stages;
    ASSERT_EQ(lsb.numInputs(), width + stages);
    const std::uint64_t mask = (1ULL << width) - 1;
    for (std::uint64_t x = 0; x <= mask; ++x) {
      for (std::uint32_t s = 0; s < width; ++s) {
        auto in = toBits(x, width);
        for (std::uint32_t k = 0; k < stages; ++k) {
          in.push_back((s >> k) & 1);
        }
        const std::uint64_t expected = (x << s) & mask;
        EXPECT_EQ(fromBits(lsb.evaluate(in), 0, width), expected);
        EXPECT_EQ(fromBits(msb.evaluate(in), 0, width), expected);
      }
    }
  }
}

TEST(BarrelShifter, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)barrelShifterLsbFirst(6), std::invalid_argument);
}

TEST(Alu, BothVariantsMatchReferenceOps) {
  for (std::uint32_t width : {3u, 8u}) {
    const Aig va = aluVariantA(width);
    const Aig vb = aluVariantB(width);
    ASSERT_EQ(va.numInputs(), 2 * width + 2);
    const std::uint64_t mask = (1ULL << width) - 1;
    Rng rng(35);
    const int samples = width <= 3 ? -1 : 250;
    auto check = [&](std::uint64_t a, std::uint64_t b, std::uint32_t op) {
      auto in = concat(toBits(a, width), toBits(b, width));
      in.push_back(op & 1);
      in.push_back((op >> 1) & 1);
      std::uint64_t expected = 0;
      switch (op) {
        case 0: expected = (a + b) & mask; break;
        case 1: expected = (a - b) & mask; break;
        case 2: expected = a & b; break;
        default: expected = a | b; break;
      }
      EXPECT_EQ(fromBits(va.evaluate(in), 0, width), expected)
          << "A: " << a << " op" << op << " " << b;
      EXPECT_EQ(fromBits(vb.evaluate(in), 0, width), expected)
          << "B: " << a << " op" << op << " " << b;
    };
    if (samples < 0) {
      for (std::uint64_t a = 0; a <= mask; ++a) {
        for (std::uint64_t b = 0; b <= mask; ++b) {
          for (std::uint32_t op = 0; op < 4; ++op) check(a, b, op);
        }
      }
    } else {
      for (int i = 0; i < samples; ++i) {
        check(rng.next64() & mask, rng.next64() & mask,
              static_cast<std::uint32_t>(rng.below(4)));
      }
    }
  }
}

TEST(Generators, RejectZeroWidth) {
  EXPECT_THROW((void)rippleCarryAdder(0), std::invalid_argument);
  EXPECT_THROW((void)arrayMultiplier(0), std::invalid_argument);
  EXPECT_THROW((void)carryLookaheadAdder(4, 0), std::invalid_argument);
}

TEST(RandomAig, RespectsInterfaceCounts) {
  Rng rng(36);
  RandomAigOptions opt;
  opt.numInputs = 9;
  opt.numAnds = 50;
  opt.numOutputs = 4;
  const Aig g = randomAig(opt, rng);
  EXPECT_EQ(g.numInputs(), 9u);
  EXPECT_EQ(g.numOutputs(), 4u);
  EXPECT_LE(g.numAnds(), 50u);
}

TEST(RandomAig, DeterministicForSeed) {
  RandomAigOptions opt;
  Rng r1(5), r2(5);
  const Aig a = randomAig(opt, r1);
  const Aig b = randomAig(opt, r2);
  ASSERT_EQ(a.numNodes(), b.numNodes());
  for (int bits = 0; bits < 256; ++bits) {
    std::vector<bool> in(opt.numInputs);
    for (std::uint32_t i = 0; i < opt.numInputs; ++i) in[i] = (bits >> i) & 1;
    EXPECT_EQ(a.evaluate(in), b.evaluate(in));
  }
}

}  // namespace
}  // namespace cp::gen
