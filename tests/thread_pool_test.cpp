#include "src/base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cp {
namespace {

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.numWorkers(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, VoidTasksComplete) {
  std::atomic<int> counter{0};
  ThreadPool pool(3);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  auto good = pool.submit([] { return 42; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take down its worker.
  EXPECT_EQ(good.get(), 42);
  auto after = pool.submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (std::uint64_t i = 1; i <= 200; ++i) {
      futures.push_back(pool.submit([&sum, i] {
        sum.fetch_add(i, std::memory_order_relaxed);
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  for (auto& f : futures) f.get();  // all futures must be fulfilled
  EXPECT_EQ(sum.load(), 200u * 201u / 2);
}

TEST(ThreadPool, ManyWorkersContendOnOneQueue) {
  ThreadPool pool(8);
  std::vector<std::future<std::uint64_t>> futures;
  for (std::uint64_t i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  std::uint64_t total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 499u * 500u / 2);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that must overlap: each waits for the other's arrival.
  // With >= 2 workers both get picked up and the barrier resolves; a
  // single-worker pool would deadlock, so guard with a generous timeout
  // via the promise/future pair instead of blocking forever.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, HigherPriorityDispatchesFirst) {
  // One worker, blocked on a gate while tasks pile up; after the gate
  // opens, the queued tasks must run strictly by descending priority.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = pool.submit([opened] { opened.wait(); });

  std::mutex orderMutex;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (const int priority : {0, 5, -3, 10, 5}) {
    futures.push_back(pool.submit(priority, [priority, &orderMutex, &order] {
      std::lock_guard<std::mutex> lock(orderMutex);
      order.push_back(priority);
    }));
  }
  gate.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
  EXPECT_EQ(order, (std::vector<int>{10, 5, 5, 0, -3}));
}

TEST(ThreadPool, FifoWithinOnePriorityLevel) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = pool.submit([opened] { opened.wait(); });

  std::mutex orderMutex;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit(3, [i, &orderMutex, &order] {
      std::lock_guard<std::mutex> lock(orderMutex);
      order.push_back(i);
    }));
  }
  gate.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PrioritySubmissionUnderContention) {
  // Priorities must not break completion guarantees when many workers
  // race on the queue; every future still resolves with its own value.
  ThreadPool pool(8);
  std::vector<std::future<std::uint64_t>> futures;
  for (std::uint64_t i = 0; i < 500; ++i) {
    futures.push_back(
        pool.submit(static_cast<int>(i % 7), [i] { return i; }));
  }
  std::uint64_t total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 499u * 500u / 2);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  // A task may enqueue follow-up work on the same pool (the parallel CEC
  // driver does not need this, but it must not deadlock or corrupt the
  // queue).
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 21; });
    return 2 * inner.get();
  });
  EXPECT_EQ(outer.get(), 42);
}

}  // namespace
}  // namespace cp
