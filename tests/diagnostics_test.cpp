// Tests of the diagnostics engine itself (src/base/diagnostics.h): the
// collector's severity floor and counters, the exit-gating predicate with
// and without --werror semantics, and both renderers (text lines and
// RFC 8259-escaped JSON).
#include <gtest/gtest.h>

#include <sstream>

#include "src/base/diagnostics.h"

namespace cp::diag {
namespace {

Diagnostic make(Severity s, const std::string& code,
                const std::string& location, const std::string& message) {
  return Diagnostic{s, code, location, message};
}

TEST(Diagnostics, SeverityNames) {
  EXPECT_STREQ(severityName(Severity::kInfo), "info");
  EXPECT_STREQ(severityName(Severity::kWarning), "warning");
  EXPECT_STREQ(severityName(Severity::kError), "error");
}

TEST(Diagnostics, CollectorKeepsOrderAndCounts) {
  DiagnosticCollector sink;
  sink.report(make(Severity::kWarning, "P103", "clause 4", "dup"));
  sink.report(make(Severity::kInfo, "P107", "", "histogram"));
  sink.report(make(Severity::kError, "P108", "clause 9", "replay"));
  sink.report(make(Severity::kWarning, "P103", "clause 5", "dup"));

  ASSERT_EQ(sink.diagnostics().size(), 4u);
  EXPECT_EQ(sink.diagnostics()[0].code, "P103");
  EXPECT_EQ(sink.diagnostics()[2].location, "clause 9");
  EXPECT_EQ(sink.count(Severity::kInfo), 1u);
  EXPECT_EQ(sink.count(Severity::kWarning), 2u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_EQ(sink.countOf("P103"), 2u);
  EXPECT_EQ(sink.countOf("P107"), 1u);
  EXPECT_EQ(sink.countOf("Z999"), 0u);
  EXPECT_EQ(sink.countsByCode().size(), 3u);
}

TEST(Diagnostics, SeverityFloorGatesBufferNotCounters) {
  DiagnosticCollector sink(Severity::kWarning);
  sink.report(make(Severity::kInfo, "C105", "", "unused"));
  sink.report(make(Severity::kWarning, "C102", "clause 1", "tautology"));

  // The info finding is suppressed from the buffer but still counted.
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].code, "C102");
  EXPECT_EQ(sink.count(Severity::kInfo), 1u);
  EXPECT_EQ(sink.countOf("C105"), 1u);
}

TEST(Diagnostics, FailedPredicate) {
  DiagnosticCollector clean;
  clean.report(make(Severity::kInfo, "P107", "", "histogram"));
  EXPECT_FALSE(clean.failed(false));
  EXPECT_FALSE(clean.failed(true));  // infos never fail, even with --werror

  DiagnosticCollector warned;
  warned.report(make(Severity::kWarning, "P103", "clause 4", "dup"));
  EXPECT_FALSE(warned.failed(false));
  EXPECT_TRUE(warned.failed(true));

  DiagnosticCollector errored;
  errored.report(make(Severity::kError, "A101", "and 4", "cycle"));
  EXPECT_TRUE(errored.failed(false));
  EXPECT_TRUE(errored.failed(true));
}

TEST(Diagnostics, RenderText) {
  DiagnosticCollector sink;
  sink.report(make(Severity::kError, "A103", "and 6", "undefined fanin"));
  sink.report(make(Severity::kInfo, "C105", "", "3 unused variables"));
  std::ostringstream out;
  renderText(sink.diagnostics(), out);
  EXPECT_EQ(out.str(),
            "error A103 and 6: undefined fanin\n"
            "info C105 3 unused variables\n");
}

TEST(Diagnostics, RenderJsonIsOneObjectPerLine) {
  DiagnosticCollector sink;
  sink.report(make(Severity::kWarning, "P106", "clause 7", "subsumed"));
  sink.report(make(Severity::kInfo, "P107", "", "histogram: 1:2"));
  std::ostringstream out;
  renderJson(sink.diagnostics(), out);
  EXPECT_EQ(out.str(),
            "[\n"
            "{\"severity\":\"warning\",\"code\":\"P106\","
            "\"location\":\"clause 7\",\"message\":\"subsumed\"},\n"
            "{\"severity\":\"info\",\"code\":\"P107\","
            "\"location\":\"\",\"message\":\"histogram: 1:2\"}\n"
            "]\n");
}

TEST(Diagnostics, JsonEscaping) {
  EXPECT_EQ(jsonEscaped("plain"), "plain");
  EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(jsonEscaped(std::string("a\x01z", 3)), "a\\u0001z");
  // Non-ASCII bytes (e.g. the UTF-8 "⊆" in P106 messages) pass through.
  EXPECT_EQ(jsonEscaped("1 ⊆ 2"), "1 ⊆ 2");
}

TEST(Diagnostics, EmptyRenderings) {
  std::ostringstream text, json;
  renderText({}, text);
  renderJson({}, json);
  EXPECT_EQ(text.str(), "");
  EXPECT_EQ(json.str(), "[]\n");
}

}  // namespace
}  // namespace cp::diag
