#include "src/rewrite/restructure.h"

#include <gtest/gtest.h>

#include "src/gen/arith.h"
#include "src/gen/random_aig.h"

namespace cp::rewrite {
namespace {

using aig::Aig;

void expectSameFunction(const Aig& a, const Aig& b, bool exhaustive) {
  ASSERT_EQ(a.numInputs(), b.numInputs());
  ASSERT_EQ(a.numOutputs(), b.numOutputs());
  if (exhaustive) {
    for (std::uint64_t bits = 0; bits < (1ULL << a.numInputs()); ++bits) {
      std::vector<bool> in(a.numInputs());
      for (std::uint32_t i = 0; i < a.numInputs(); ++i) {
        in[i] = (bits >> i) & 1;
      }
      ASSERT_EQ(a.evaluate(in), b.evaluate(in)) << "bits=" << bits;
    }
  } else {
    Rng rng(17);
    for (int s = 0; s < 256; ++s) {
      std::vector<bool> in(a.numInputs());
      for (auto&& bit : in) bit = rng.flip();
      ASSERT_EQ(a.evaluate(in), b.evaluate(in));
    }
  }
}

TEST(Restructure, PreservesSmallAdderExhaustively) {
  const Aig g = gen::rippleCarryAdder(3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    expectSameFunction(g, restructure(g, rng), /*exhaustive=*/true);
  }
}

TEST(Restructure, PreservesComparatorExhaustively) {
  const Aig g = gen::treeComparator(4);
  Rng rng(3);
  expectSameFunction(g, restructure(g, rng), /*exhaustive=*/true);
}

TEST(Restructure, PreservesMultiplierSampled) {
  const Aig g = gen::arrayMultiplier(5);
  Rng rng(5);
  expectSameFunction(g, restructure(g, rng), /*exhaustive=*/false);
}

TEST(Restructure, PreservesRandomGraphsAcrossOptionSweep) {
  Rng graphRng(21);
  gen::RandomAigOptions graphOpt;
  graphOpt.numInputs = 7;
  graphOpt.numAnds = 90;
  graphOpt.numOutputs = 3;
  const Aig g = gen::randomAig(graphOpt, graphRng);
  for (std::uint32_t maxLeaves : {2u, 4u, 8u, 16u}) {
    for (std::uint32_t balance : {0u, 50u, 100u}) {
      RestructureOptions opt;
      opt.maxLeaves = maxLeaves;
      opt.balancePercent = balance;
      Rng rng(maxLeaves * 100 + balance);
      expectSameFunction(g, restructure(g, rng, opt), /*exhaustive=*/false);
    }
  }
}

TEST(Restructure, ActuallyChangesStructure) {
  const Aig g = gen::carryLookaheadAdder(8);
  Rng rng(7);
  const Aig r = restructure(g, rng);
  // Same function but (almost surely) a different node count: the
  // decomposition duplicates logic across fanouts and rebalances.
  expectSameFunction(g, r, /*exhaustive=*/false);
  EXPECT_NE(g.numAnds(), r.numAnds());
}

TEST(Restructure, HandlesConstantOutputs) {
  Aig g;
  const auto a = g.addInput();
  g.addOutput(aig::kFalse);
  g.addOutput(g.addAnd(a, !a));  // folds to constant
  Rng rng(8);
  const Aig r = restructure(g, rng);
  EXPECT_EQ(r.evaluate({false})[0], false);
  EXPECT_EQ(r.evaluate({true})[1], false);
}

TEST(Restructure, IdempotentOnInputsOnly) {
  Aig g;
  const auto a = g.addInput();
  const auto b = g.addInput();
  g.addOutput(a);
  g.addOutput(!b);
  Rng rng(9);
  const Aig r = restructure(g, rng);
  EXPECT_EQ(r.numAnds(), 0u);
  expectSameFunction(g, r, /*exhaustive=*/true);
}

}  // namespace
}  // namespace cp::rewrite
