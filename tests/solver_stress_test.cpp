// Stress tests exercising the solver's database maintenance (learnt-clause
// reduction, arena garbage collection, restarts) while proof logging stays
// sound.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/proof/checker.h"
#include "src/proof/trim.h"
#include "src/sat/clause_arena.h"
#include "src/sat/solver.h"

namespace cp::sat {
namespace {

Lit pos(Var v) { return Lit::make(v, false); }
Lit neg(Var v) { return Lit::make(v, true); }

/// Pigeonhole principle CNF: P pigeons into H holes.
void addPigeonHole(Solver& s, int pigeons, int holes,
                   std::vector<std::vector<Var>>& p) {
  p.assign(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (auto& x : row) x = s.newVar();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < holes; ++j) clause.push_back(pos(p[i][j]));
    ASSERT_TRUE(s.addClause(clause));
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        ASSERT_TRUE(s.addClause({neg(p[i1][j]), neg(p[i2][j])}));
      }
    }
  }
}

TEST(SolverStress, PigeonHole87TriggersDbMaintenance) {
  proof::ProofLog log;
  Solver s(&log);
  std::vector<std::vector<Var>> p;
  addPigeonHole(s, 8, 7, p);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  // The run is long enough to reduce the learnt database and restart.
  EXPECT_GT(s.stats().conflicts, 1000u);
  EXPECT_GT(s.stats().dbReductions, 0u);
  EXPECT_GT(s.stats().restarts, 0u);
  // Proof logging survived deletion and GC.
  ASSERT_TRUE(log.hasRoot());
  EXPECT_GT(log.numDeleted(), 0u);
  const auto trimmed = proof::trimProof(log);
  const auto check = proof::checkProof(trimmed.log);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SolverStress, HardRandom3SatMixRemainsSound) {
  // Random instances straddling the phase transition, solved with the
  // whole machinery active; every UNSAT proof must check.
  Rng rng(20250705);
  int unsatCount = 0;
  for (int round = 0; round < 8; ++round) {
    proof::ProofLog log;
    Solver s(&log);
    const int numVars = 60;
    for (int i = 0; i < numVars; ++i) (void)s.newVar();
    const int numClauses = static_cast<int>(numVars * 4.4);
    bool consistent = true;
    for (int c = 0; c < numClauses && consistent; ++c) {
      Lit clause[3];
      for (auto& l : clause) {
        l = Lit::make(static_cast<Var>(rng.below(numVars)), rng.flip());
      }
      consistent = s.addClause(clause);
    }
    const LBool verdict = consistent ? s.solve() : LBool::kFalse;
    if (verdict == LBool::kTrue) continue;
    ASSERT_EQ(verdict, LBool::kFalse);
    ++unsatCount;
    const auto check = proof::checkProof(log);
    ASSERT_TRUE(check.ok) << "round " << round << ": " << check.error;
  }
  EXPECT_GT(unsatCount, 0);
}

TEST(SolverStress, ManyIncrementalCallsWithAssumptions) {
  // Emulates the CEC usage pattern: hundreds of assumption pairs against
  // one growing clause database.
  proof::ProofLog log;
  Solver s(&log);
  const int n = 40;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.newVar());
  // Chain of equivalences: v0 <-> v1 <-> ... <-> v39.
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(s.addClause({neg(vars[i]), pos(vars[i + 1])}));
    ASSERT_TRUE(s.addClause({pos(vars[i]), neg(vars[i + 1])}));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; j += 7) {
      // vi and vj are equivalent: both polarity-mismatch queries UNSAT.
      const Lit q1[2] = {pos(vars[i]), neg(vars[j])};
      ASSERT_EQ(s.solve(std::span<const Lit>(q1, 2)), LBool::kFalse);
      ASSERT_NE(s.conflictProofId(), proof::kNoClause);
      const Lit q2[2] = {neg(vars[i]), pos(vars[j])};
      ASSERT_EQ(s.solve(std::span<const Lit>(q2, 2)), LBool::kFalse);
      ASSERT_NE(s.conflictProofId(), proof::kNoClause);
    }
  }
  // Still satisfiable overall, and the lemma log checks.
  EXPECT_EQ(s.solve(), LBool::kTrue);
  proof::CheckOptions options;
  options.requireRoot = false;
  const auto check = proof::checkProof(log, options);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ClauseArena, AllocAndAccess) {
  ClauseArena arena;
  const Lit lits[3] = {pos(1), neg(2), pos(3)};
  const CRef ref = arena.alloc(lits, /*learnt=*/true, /*proofId=*/42);
  Clause c = arena.get(ref);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.learnt());
  EXPECT_FALSE(c.relocated());
  EXPECT_EQ(c.proofId(), 42u);
  EXPECT_EQ(c[0], pos(1));
  EXPECT_EQ(c[1], neg(2));
  EXPECT_EQ(c[2], pos(3));
  c.setActivity(2.5f);
  EXPECT_FLOAT_EQ(arena.get(ref).activity(), 2.5f);
}

TEST(ClauseArena, FreeTracksWaste) {
  ClauseArena arena;
  const Lit lits[2] = {pos(0), pos(1)};
  const CRef a = arena.alloc(lits, false, 1);
  (void)arena.alloc(lits, false, 2);
  EXPECT_EQ(arena.wastedWords(), 0u);
  arena.free(a);
  EXPECT_GT(arena.wastedWords(), 0u);
  EXPECT_LT(arena.wastedWords(), arena.usedWords());
}

TEST(ClauseArena, RelocationForwardsAndPreservesContent) {
  ClauseArena arena;
  const Lit lits[2] = {pos(5), neg(6)};
  const CRef ref = arena.alloc(lits, true, 7);
  arena.get(ref).setActivity(1.5f);

  ClauseArena fresh;
  const CRef moved = arena.relocate(ref, fresh);
  // Second relocation returns the forwarding pointer.
  EXPECT_EQ(arena.relocate(ref, fresh), moved);
  const Clause c = fresh.get(moved);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.learnt());
  EXPECT_EQ(c.proofId(), 7u);
  EXPECT_EQ(c[0], pos(5));
  EXPECT_EQ(c[1], neg(6));
  EXPECT_FLOAT_EQ(c.activity(), 1.5f);
}

}  // namespace
}  // namespace cp::sat
