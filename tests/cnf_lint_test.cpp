// CNF lint tests (src/cnf/lint.h): exact C1xx codes on pathological
// formulas — tautological and duplicate clauses, duplicate literals,
// out-of-range variables, unused and pure variables — and cleanliness of
// the Tseitin encoding the pipeline actually produces.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/base/diagnostics.h"
#include "src/cnf/cnf.h"
#include "src/cnf/lint.h"
#include "src/gen/arith.h"

namespace cp::cnf {
namespace {

using diag::DiagnosticCollector;
using diag::Severity;
using sat::Lit;

Lit pos(sat::Var v) { return Lit::make(v, false); }
Lit neg(sat::Var v) { return Lit::make(v, true); }

TEST(CnfLint, TautologicalClause) {
  Cnf cnf;
  cnf.numVars = 2;
  cnf.clauses = {{pos(0), neg(1), neg(0)}};
  DiagnosticCollector sink;
  lint(cnf, sink);
  ASSERT_EQ(sink.countOf("C102"), 1u);
  const auto& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "C102");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location, "clause 1");
}

TEST(CnfLint, DuplicateLiteralAndDuplicateClause) {
  Cnf cnf;
  cnf.numVars = 2;
  cnf.clauses = {
      {pos(0), pos(1)},
      {pos(1), pos(0), pos(0)},  // duplicate literal; same set as clause 1
  };
  DiagnosticCollector sink;
  lint(cnf, sink);
  EXPECT_EQ(sink.countOf("C103"), 1u);
  ASSERT_EQ(sink.countOf("C104"), 1u);
  const auto dup = std::find_if(
      sink.diagnostics().begin(), sink.diagnostics().end(),
      [](const diag::Diagnostic& d) { return d.code == "C104"; });
  ASSERT_NE(dup, sink.diagnostics().end());
  EXPECT_EQ(dup->location, "clause 2");
  EXPECT_EQ(dup->message, "duplicate of clause 1");
}

TEST(CnfLint, OutOfRangeLiteralIsAnError) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.clauses = {{pos(0), pos(5)}};
  DiagnosticCollector sink;
  lint(cnf, sink);
  EXPECT_EQ(sink.countOf("C101"), 1u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_TRUE(sink.failed());
}

TEST(CnfLint, EmptyClauseIsInfo) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.clauses = {{pos(0)}, {}};
  DiagnosticCollector sink;
  lint(cnf, sink);
  ASSERT_EQ(sink.countOf("C107"), 1u);
  EXPECT_FALSE(sink.failed(/*werror=*/true));  // infos never gate
}

TEST(CnfLint, UnusedAndPureVariables) {
  Cnf cnf;
  cnf.numVars = 4;
  // v0 both polarities, v1 pure positive, v2 pure negative, v3 unused.
  cnf.clauses = {{pos(0), pos(1)}, {neg(0), neg(2)}};
  DiagnosticCollector sink;
  lint(cnf, sink);
  ASSERT_EQ(sink.countOf("C105"), 1u);
  ASSERT_EQ(sink.countOf("C106"), 1u);
  // Aggregates use DIMACS (1-based) numbering.
  EXPECT_NE(sink.diagnostics()[0].message.find(": 4"), std::string::npos);
  EXPECT_NE(sink.diagnostics()[1].message.find("2, 3"), std::string::npos);
  // A pure variable is a dead-cone indicator: warning, so --werror gates.
  EXPECT_EQ(sink.diagnostics()[1].severity, Severity::kWarning);
  EXPECT_TRUE(sink.failed(/*werror=*/true));
}

TEST(CnfLint, UnitPinnedVariablesAreNotPure) {
  Cnf cnf;
  cnf.numVars = 3;
  // v0 is pure negative but pinned by a unit clause (the Tseitin constant
  // node's shape); v1 is pure positive through a non-unit clause only;
  // v2 sees both polarities.
  cnf.clauses = {{neg(0)}, {pos(1), pos(2)}, {neg(2), pos(1)}};
  DiagnosticCollector sink;
  lint(cnf, sink);
  ASSERT_EQ(sink.countOf("C106"), 1u);
  const auto& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "C106");
  EXPECT_EQ(d.severity, Severity::kWarning);
  // Only v1 (DIMACS 2) is flagged; pinned v0 is exempt.
  EXPECT_NE(d.message.find(": 2"), std::string::npos);
  EXPECT_EQ(d.message.find("1,"), std::string::npos);
}

TEST(CnfLint, MiterEncodingWithAssertionIsWarningClean) {
  // The full pipeline shape: constant unit + gate clauses + output
  // assertion. The two deliberately pinned pure variables (constant node,
  // asserted output) must not trip the dead-cone warning.
  const auto graph = gen::rippleCarryAdder(4);
  const Cnf cnf = encodeWithOutputAssertion(graph);
  DiagnosticCollector sink;
  lint(cnf, sink);
  EXPECT_EQ(sink.count(Severity::kError), 0u);
  EXPECT_EQ(sink.countOf("C106"), 0u);
}

TEST(CnfLint, TseitinEncodingIsClean) {
  const auto graph = gen::rippleCarryAdder(6);
  const Cnf cnf = encode(graph);
  DiagnosticCollector sink;
  lint(cnf, sink);
  EXPECT_EQ(sink.count(Severity::kError), 0u);
  EXPECT_EQ(sink.countOf("C102"), 0u);
  EXPECT_EQ(sink.countOf("C104"), 0u);
}

}  // namespace
}  // namespace cp::cnf
