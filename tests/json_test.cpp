// Tests of the shared streaming JSON writer (src/base/json.h): escaping,
// separator/nesting state, the one-element-per-line array style the lint
// renderer and the batch service's record streams rely on, and number
// formatting determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "src/base/diagnostics.h"
#include "src/base/json.h"

namespace cp::json {
namespace {

TEST(Json, Escaping) {
  EXPECT_EQ(escaped("plain"), "plain");
  EXPECT_EQ(escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(escaped("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(escaped(std::string("a\x01z", 3)), "a\\u0001z");
  // Non-ASCII bytes (UTF-8 payload) pass through verbatim.
  EXPECT_EQ(escaped("1 ⊆ 2"), "1 ⊆ 2");
}

TEST(Json, CompactObject) {
  std::ostringstream out;
  Writer w(out);
  w.beginObject()
      .field("name", "job-7")
      .field("ok", true)
      .field("count", std::uint64_t{42})
      .field("delta", std::int64_t{-3})
      .endObject();
  EXPECT_EQ(out.str(), "{\"name\":\"job-7\",\"ok\":true,\"count\":42,"
                       "\"delta\":-3}");
}

TEST(Json, NestedContainers) {
  std::ostringstream out;
  Writer w(out);
  w.beginObject().key("xs").beginArray();
  w.value(std::uint64_t{1}).value(std::uint64_t{2});
  w.beginObject().field("y", false).endObject();
  w.endArray().field("tail", "z").endObject();
  EXPECT_EQ(out.str(), "{\"xs\":[1,2,{\"y\":false}],\"tail\":\"z\"}");
}

TEST(Json, LinePerElementArrayMatchesLintShape) {
  std::ostringstream out;
  Writer w(out);
  w.beginArray(/*linePerElement=*/true);
  w.beginObject().field("a", std::uint64_t{1}).endObject();
  w.beginObject().field("b", std::uint64_t{2}).endObject();
  w.endArray();
  w.finishLine();
  EXPECT_EQ(out.str(), "[\n{\"a\":1},\n{\"b\":2}\n]\n");
}

TEST(Json, EmptyContainers) {
  std::ostringstream out;
  Writer w(out);
  w.beginObject().key("a").beginArray(true).endArray();
  w.key("b").beginObject().endObject().endObject();
  EXPECT_EQ(out.str(), "{\"a\":[],\"b\":{}}");
}

TEST(Json, Numbers) {
  std::ostringstream out;
  Writer w(out);
  w.beginArray();
  w.value(std::numeric_limits<std::uint64_t>::max());
  w.value(std::numeric_limits<std::int64_t>::min());
  w.value(0.25);
  w.value(1.0);
  w.value(std::numeric_limits<double>::infinity());
  w.endArray();
  EXPECT_EQ(out.str(),
            "[18446744073709551615,-9223372036854775808,0.25,1,null]");
}

TEST(Json, EscapesKeys) {
  std::ostringstream out;
  Writer w(out);
  w.beginObject().field("a\"b", "v").endObject();
  EXPECT_EQ(out.str(), "{\"a\\\"b\":\"v\"}");
}

// The lint renderer is a client of this writer; its established byte format
// must survive the refactor (same assertion as diagnostics_test, kept here
// so a Writer change that breaks the shape fails next to its cause).
TEST(Json, DiagnosticsRendererUnchanged) {
  diag::DiagnosticCollector sink;
  sink.report({diag::Severity::kWarning, "P106", "clause 7", "subsumed"});
  std::ostringstream out;
  diag::renderJson(sink.diagnostics(), out);
  EXPECT_EQ(out.str(),
            "[\n"
            "{\"severity\":\"warning\",\"code\":\"P106\","
            "\"location\":\"clause 7\",\"message\":\"subsumed\"}\n"
            "]\n");
}

}  // namespace
}  // namespace cp::json
