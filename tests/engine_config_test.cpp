// The unified engine-dispatch API: cec::checkMiter drives any of the three
// engines through one EngineConfig, validates options uniformly, certifies
// proof-producing verdicts, and reports trim statistics through the single
// consolidated TrimStats member.
#include "src/cec/certify.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/cec/miter.h"
#include "src/cec/multi_cec.h"
#include "src/gen/arith.h"

namespace cp::cec {
namespace {

using aig::Aig;

Aig equivalentMiter() {
  return buildMiter(gen::rippleCarryAdder(5), gen::carryLookaheadAdder(5, 3));
}

TEST(EngineConfig, DefaultIsCertifiedSweeping) {
  const CertifyReport report = checkMiter(equivalentMiter());
  ASSERT_EQ(report.cec.verdict, Verdict::kEquivalent);
  EXPECT_TRUE(report.proofChecked) << report.check.error;
  EXPECT_GT(report.trim.clausesAfter, 0u);
  EXPECT_LE(report.trim.clausesAfter, report.trim.clausesBefore);
  EXPECT_LE(report.trim.resolutionsAfter, report.trim.resolutionsBefore);
}

TEST(EngineConfig, DispatchesMonolithic) {
  EngineConfig config;
  config.engine = MonolithicOptions();
  const CertifyReport report = checkMiter(equivalentMiter(), config);
  ASSERT_EQ(report.cec.verdict, Verdict::kEquivalent);
  EXPECT_TRUE(report.proofChecked) << report.check.error;
  EXPECT_GT(report.check.resolutions, 0u);
}

TEST(EngineConfig, DispatchesBddWithoutProof) {
  EngineConfig config;
  config.engine = BddCecOptions();
  const CertifyReport report = checkMiter(equivalentMiter(), config);
  ASSERT_EQ(report.cec.verdict, Verdict::kEquivalent);
  // No proof artifacts: canonicity is the BDD engine's only argument.
  EXPECT_FALSE(report.proofChecked);
  EXPECT_EQ(report.trim.clausesBefore, 0u);
  EXPECT_EQ(report.trim.resolutionsBefore, 0u);
  EXPECT_EQ(report.check.resolutions, 0u);
}

TEST(EngineConfig, BddCounterexampleIsValidated) {
  Aig broken = gen::rippleCarryAdder(5);
  broken.setOutput(2, !broken.output(2));
  const Aig miter = buildMiter(gen::rippleCarryAdder(5), broken);
  EngineConfig config;
  config.engine = BddCecOptions();
  const CertifyReport report = checkMiter(miter, config);
  ASSERT_EQ(report.cec.verdict, Verdict::kInequivalent);
  // checkMiter re-evaluates every counterexample before returning it.
  EXPECT_TRUE(miter.evaluate(report.cec.counterexample).at(0));
}

TEST(EngineConfig, ValidateReportsTheHeldAlternative) {
  EngineConfig config;
  SweepOptions sweep;
  sweep.simWords = 0;
  config.engine = sweep;
  EXPECT_NE(config.validate().find("SweepOptions.simWords"),
            std::string::npos)
      << config.validate();

  BddCecOptions bdd;
  bdd.nodeLimit = 0;
  config.engine = bdd;
  EXPECT_NE(config.validate().find("BddCecOptions.nodeLimit"),
            std::string::npos)
      << config.validate();

  config.engine = MonolithicOptions();
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(EngineConfig, CheckMiterRejectsInvalidOptions) {
  EngineConfig config;
  SweepOptions sweep;
  sweep.simWords = 0;
  config.engine = sweep;
  try {
    (void)checkMiter(equivalentMiter(), config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // Uniform wording: entry point, field, value, allowed range.
    EXPECT_NE(msg.find("checkMiter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("SweepOptions.simWords"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got 0"), std::string::npos) << msg;
  }
}

TEST(EngineConfig, CheckThreadsDoesNotChangeTheReport) {
  const Aig miter = equivalentMiter();
  EngineConfig sequential;
  sequential.check.numThreads = 1;
  const CertifyReport one = checkMiter(miter, sequential);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    EngineConfig parallel;
    parallel.check.numThreads = threads;
    const CertifyReport many = checkMiter(miter, parallel);
    EXPECT_EQ(many.proofChecked, one.proofChecked) << threads;
    EXPECT_EQ(many.check.ok, one.check.ok) << threads;
    EXPECT_EQ(many.check.error, one.check.error) << threads;
    EXPECT_EQ(many.check.failedClause, one.check.failedClause) << threads;
    EXPECT_EQ(many.check.derivedChecked, one.check.derivedChecked) << threads;
    EXPECT_EQ(many.check.axiomsChecked, one.check.axiomsChecked) << threads;
    EXPECT_EQ(many.check.resolutions, one.check.resolutions) << threads;
    EXPECT_EQ(many.trim.clausesAfter, one.trim.clausesAfter) << threads;
    EXPECT_EQ(many.trim.resolutionsAfter, one.trim.resolutionsAfter)
        << threads;
  }
}

TEST(EngineConfig, RawLogCapturesTheUntrimmedProof) {
  proof::ProofLog log;
  const CertifyReport report =
      checkMiter(equivalentMiter(), EngineConfig(), &log);
  ASSERT_TRUE(report.proofChecked) << report.check.error;
  EXPECT_TRUE(log.hasRoot());
  EXPECT_EQ(log.numClauses(), report.trim.clausesBefore);
  EXPECT_EQ(log.numResolutions(), report.trim.resolutionsBefore);
}

TEST(EngineConfig, MultiCecValidatesUniformly) {
  const Aig left = gen::parityChain(4);
  const Aig right = gen::parityTree(4);
  MultiCecOptions options;
  options.simWords = 0;
  try {
    (void)checkOutputs(left, right, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MultiCecOptions.simWords"),
              std::string::npos)
        << e.what();
  }
  options.simWords = 8;
  options.sweep.simWords = 0;
  try {
    (void)checkOutputs(left, right, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MultiCecOptions.sweep"),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineConfig, MultiCecCheckThreadsIsDeterministic) {
  // Parallel-across-outputs times parallel-within-each-check must still
  // reproduce the sequential driver's deterministic fields.
  const Aig left = gen::rippleCarryAdder(5);
  const Aig right = gen::carrySelectAdder(5, 2);
  MultiCecOptions sequential;
  const MultiCecResult one = checkOutputs(left, right, sequential);
  MultiCecOptions parallel;
  parallel.parallel.numThreads = 4;
  parallel.check.numThreads = 4;
  const MultiCecResult many = checkOutputs(left, right, parallel);

  EXPECT_EQ(many.overall, one.overall);
  EXPECT_EQ(many.satChecked, one.satChecked);
  EXPECT_EQ(many.totalConflicts, one.totalConflicts);
  EXPECT_EQ(many.totalProofClauses, one.totalProofClauses);
  EXPECT_EQ(many.totalProofResolutions, one.totalProofResolutions);
  ASSERT_EQ(many.outputs.size(), one.outputs.size());
  for (std::size_t o = 0; o < one.outputs.size(); ++o) {
    EXPECT_EQ(many.outputs[o].verdict, one.outputs[o].verdict) << o;
    EXPECT_EQ(many.outputs[o].proofChecked, one.outputs[o].proofChecked) << o;
    EXPECT_EQ(many.outputs[o].proofClauses, one.outputs[o].proofClauses) << o;
    EXPECT_EQ(many.outputs[o].proofResolutions,
              one.outputs[o].proofResolutions)
        << o;
  }
}

}  // namespace
}  // namespace cp::cec
