// CPF container tests: randomized round-trips (ProofLog -> CPF -> ProofLog
// and CPF <-> TRACECHECK), corruption rejection (truncation, flipped CRC
// bytes, bad magic — clean errors, never crashes), streaming-checker
// verdict identity with proof::checkProof, the bounded-memory high-water
// property, and end-to-end disk certification through cec::checkMiter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/gen/arith.h"
#include "src/proof/checker.h"
#include "src/proof/tracecheck.h"
#include "src/proofio/format.h"
#include "src/proofio/reader.h"
#include "src/proofio/writer.h"

namespace cp::proofio {
namespace {

using proof::ClauseId;
using proof::ProofLog;

// ---- helpers --------------------------------------------------------------

std::string toCpf(const ProofLog& log, WriterOptions options = {}) {
  std::ostringstream out(std::ios::binary);
  writeProof(log, out, options);
  return out.str();
}

ProofLog fromCpf(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return readProof(in);
}

std::string toTracecheck(const ProofLog& log) {
  std::ostringstream out;
  proof::writeTracecheck(log, out);
  return out.str();
}

void expectLogsEqual(const ProofLog& a, const ProofLog& b) {
  ASSERT_EQ(a.numClauses(), b.numClauses());
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.numAxioms(), b.numAxioms());
  EXPECT_EQ(a.numDeleted(), b.numDeleted());
  EXPECT_EQ(a.numLiterals(), b.numLiterals());
  EXPECT_EQ(a.numResolutions(), b.numResolutions());
  for (ClauseId id = 1; id <= a.numClauses(); ++id) {
    const auto litsA = a.lits(id), litsB = b.lits(id);
    ASSERT_EQ(litsA.size(), litsB.size()) << "clause " << id;
    EXPECT_TRUE(std::equal(litsA.begin(), litsA.end(), litsB.begin()))
        << "clause " << id;
    const auto chainA = a.chain(id), chainB = b.chain(id);
    ASSERT_EQ(chainA.size(), chainB.size()) << "clause " << id;
    EXPECT_TRUE(std::equal(chainA.begin(), chainA.end(), chainB.begin()))
        << "clause " << id;
  }
}

/// A structurally valid (ids dense, chains backward) but semantically
/// arbitrary log: exactly what the container must preserve byte-for-byte
/// concerns itself with. Optionally ends in an empty-clause root;
/// `withDeletes = false` keeps the log representable in TRACECHECK, which
/// has no deletion records.
ProofLog randomLog(Rng& rng, bool withRoot, bool withDeletes = true) {
  ProofLog log;
  const std::uint32_t axioms = 1 + static_cast<std::uint32_t>(rng.below(40));
  const std::uint32_t derived = static_cast<std::uint32_t>(rng.below(120));
  for (std::uint32_t i = 0; i < axioms; ++i) {
    std::vector<sat::Lit> lits;
    const std::uint32_t width = static_cast<std::uint32_t>(rng.below(7));
    for (std::uint32_t k = 0; k < width; ++k) {
      lits.push_back(sat::Lit::make(static_cast<sat::Var>(rng.below(200)),
                                    rng.flip()));
    }
    log.addAxiom(lits);
  }
  for (std::uint32_t i = 0; i < derived; ++i) {
    std::vector<sat::Lit> lits;
    const std::uint32_t width = static_cast<std::uint32_t>(rng.below(5));
    for (std::uint32_t k = 0; k < width; ++k) {
      lits.push_back(sat::Lit::make(static_cast<sat::Var>(rng.below(200)),
                                    rng.flip()));
    }
    std::vector<ClauseId> chain;
    const std::uint32_t links = 1 + static_cast<std::uint32_t>(rng.below(6));
    for (std::uint32_t k = 0; k < links; ++k) {
      chain.push_back(
          1 + static_cast<ClauseId>(rng.below(log.numClauses())));
    }
    log.addDerived(lits, chain);
    if (withDeletes && rng.below(8) == 0) log.markDeleted(log.numClauses());
  }
  if (withRoot) {
    const ClauseId root =
        log.addDerived({}, std::vector<ClauseId>{log.numClauses()});
    log.setRoot(root);
  }
  return log;
}

/// Proof of the add16 miter, the R-Tab3 anchor workload, via checkMiter
/// with the requested engine. Memoized: several tests reuse it.
const ProofLog& add16Proof(bool sweeping) {
  static ProofLog logs[2];
  static bool ready[2] = {false, false};
  const int which = sweeping ? 0 : 1;
  if (!ready[which]) {
    const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(16),
                                           gen::carryLookaheadAdder(16, 4));
    cec::EngineConfig config;
    if (sweeping) {
      config.engine = cec::SweepOptions();
    } else {
      config.engine = cec::MonolithicOptions();
    }
    (void)cec::checkMiter(miter, config, &logs[which]);
    ready[which] = true;
  }
  return logs[which];
}

// ---- round trips ----------------------------------------------------------

TEST(ProofIoRoundTrip, EmptyLog) {
  const ProofLog log;
  const std::string bytes = toCpf(log);
  const ProofLog back = fromCpf(bytes);
  expectLogsEqual(log, back);
}

TEST(ProofIoRoundTrip, AxiomOnlyLog) {
  ProofLog log;
  log.addAxiom(std::vector<sat::Lit>{sat::Lit::make(0, false),
                                     sat::Lit::make(3, true)});
  log.addAxiom(std::vector<sat::Lit>{});  // empty axiom is representable
  expectLogsEqual(log, fromCpf(toCpf(log)));
}

TEST(ProofIoRoundTrip, RandomizedLogs) {
  Rng rng(2026);
  for (int i = 0; i < 50; ++i) {
    const bool withRoot = (i % 2) == 0;
    const ProofLog log = randomLog(rng, withRoot);
    // Tiny chunks force multi-chunk containers even for small logs.
    WriterOptions options;
    options.chunkBytes = 64 + rng.below(512);
    const ProofLog back = fromCpf(toCpf(log, options));
    expectLogsEqual(log, back);
  }
}

TEST(ProofIoRoundTrip, CpfAndTracecheckAgree) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    // TRACECHECK cannot carry deletion records, so compare without them.
    const ProofLog log = randomLog(rng, true, /*withDeletes=*/false);
    // ProofLog -> CPF -> ProofLog -> TRACECHECK equals the direct text.
    const ProofLog viaBinary = fromCpf(toCpf(log));
    EXPECT_EQ(toTracecheck(log), toTracecheck(viaBinary));
    // And text -> ProofLog equals binary -> ProofLog.
    std::istringstream text(toTracecheck(log));
    const ProofLog viaText = proof::readTracecheck(text);
    expectLogsEqual(viaText, viaBinary);
  }
}

TEST(ProofIoRoundTrip, RealEngineProofs) {
  for (const bool sweeping : {true, false}) {
    const ProofLog& log = add16Proof(sweeping);
    ASSERT_TRUE(log.hasRoot());
    expectLogsEqual(log, fromCpf(toCpf(log)));
  }
}

TEST(ProofIoRoundTrip, BinaryAtMostHalfOfTextSize) {
  // The acceptance bar from R-ProofIO: CPF <= 50% of TRACECHECK text on
  // the R-Tab3 workloads (here the add16 anchor, both engines).
  for (const bool sweeping : {true, false}) {
    const ProofLog& log = add16Proof(sweeping);
    const std::string text = toTracecheck(log);
    const std::string binary = toCpf(log);
    EXPECT_LE(binary.size() * 2, text.size())
        << (sweeping ? "sweeping" : "monolithic") << " proof: " << binary.size()
        << " binary vs " << text.size() << " text bytes";
  }
}

TEST(ProofIoRoundTrip, ProbeReportsFooterCounts) {
  const ProofLog& log = add16Proof(true);
  const std::string bytes = toCpf(log);
  std::istringstream in(bytes, std::ios::binary);
  const ContainerInfo info = probeProof(in);
  EXPECT_EQ(info.clauses, log.numClauses());
  EXPECT_EQ(info.axioms, log.numAxioms());
  EXPECT_EQ(info.literals, log.numLiterals());
  EXPECT_EQ(info.resolutions, log.numResolutions());
  EXPECT_EQ(info.root, log.root());
  EXPECT_EQ(info.bytes, bytes.size());
  EXPECT_GE(info.chunks, 1u);
}

// ---- writer as a live sink ------------------------------------------------

TEST(ProofIoWriter, StreamingSinkMatchesPostHocReplay) {
  // Bytes streamed while the proof is being recorded must equal the bytes
  // of a post-hoc writeProof replay of the finished log.
  Rng rng(99);
  const ProofLog reference = randomLog(rng, true);

  std::ostringstream streamed(std::ios::binary);
  ProofWriter writer(streamed);
  ProofLog observed;
  observed.setSink(&writer);
  for (ClauseId id = 1; id <= reference.numClauses(); ++id) {
    if (reference.isAxiom(id)) {
      observed.addAxiom(reference.lits(id));
    } else {
      observed.addDerived(reference.lits(id), reference.chain(id));
    }
  }
  for (std::uint64_t i = 0; i < reference.numDeleted(); ++i) {
    observed.markDeleted(proof::kNoClause);
  }
  observed.setRoot(reference.root());
  observed.setSink(nullptr);
  writer.finish();

  EXPECT_EQ(streamed.str(), toCpf(reference));
}

TEST(ProofIoWriter, RequiresTheFullStream) {
  ProofLog log;
  log.addAxiom(std::vector<sat::Lit>{sat::Lit::make(0, false)});
  std::ostringstream out(std::ios::binary);
  ProofWriter writer(out);
  log.setSink(&writer);  // too late: clause 1 was never observed
  EXPECT_THROW(log.addAxiom(std::vector<sat::Lit>{}), std::logic_error);
  log.setSink(nullptr);
}

TEST(ProofIoWriter, ValidatesChunkBytes) {
  std::ostringstream out(std::ios::binary);
  WriterOptions options;
  options.chunkBytes = 1;
  EXPECT_THROW(ProofWriter(out, options), std::invalid_argument);
}

// ---- corruption -----------------------------------------------------------

TEST(ProofIoCorruption, BadMagic) {
  std::string bytes = toCpf(add16Proof(true));
  bytes[0] = 'X';
  EXPECT_THROW((void)fromCpf(bytes), std::runtime_error);
}

TEST(ProofIoCorruption, TruncatedAnywhere) {
  Rng rng(5);
  const std::string bytes = toCpf(randomLog(rng, true));
  // Every strict prefix must be rejected cleanly (footer magic, footer
  // length, or chunk payload truncation — never a crash or silent accept).
  for (const double fraction : {0.0, 0.3, 0.6, 0.9, 0.999}) {
    const std::string prefix =
        bytes.substr(0, static_cast<std::size_t>(bytes.size() * fraction));
    EXPECT_THROW((void)fromCpf(prefix), std::runtime_error) << fraction;
    std::istringstream in(prefix, std::ios::binary);
    EXPECT_THROW((void)checkProofStream(in), std::runtime_error) << fraction;
  }
}

TEST(ProofIoCorruption, FlippedByteNeverPassesSilently) {
  Rng rng(13);
  const ProofLog log = randomLog(rng, true);
  const std::string bytes = toCpf(log);
  // Flip one byte at a spread of positions. Every flip must either throw
  // (CRC/structure) — it can never silently round-trip to a different log.
  for (std::size_t pos = 0; pos < bytes.size();
       pos += 1 + bytes.size() / 37) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    try {
      const ProofLog back = fromCpf(mutated);
      expectLogsEqual(log, back);  // flip must have been in dead space
      ADD_FAILURE() << "no dead space exists: flip at " << pos
                    << " was accepted";
    } catch (const std::runtime_error&) {
      // expected: corruption detected
    }
  }
}

TEST(ProofIoCorruption, FlippedChunkCrcDetected) {
  const std::string bytes = toCpf(add16Proof(true));
  // The first chunk starts right after the 12-byte header; its CRC field
  // sits at bytes 13..16 of the frame (tag, first, count, payload, crc).
  std::string mutated = bytes;
  mutated[12 + 13] = static_cast<char>(mutated[12 + 13] ^ 0x01);
  try {
    (void)fromCpf(mutated);
    FAIL() << "flipped CRC accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

std::uint32_t leU32(const std::string& bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[pos + i]);
  }
  return v;
}

TEST(ProofIoCorruption, ChunkCrcErrorNamesChunkAndByteOffset) {
  // Regression: a mid-chunk corruption must name the failing chunk index
  // and its byte offset in the container, not just "CRC mismatch".
  Rng rng(21);
  WriterOptions options;
  options.chunkBytes = 128;  // tiny chunks -> multi-chunk container
  const std::string bytes = toCpf(randomLog(rng, true), options);
  std::istringstream probe(bytes, std::ios::binary);
  ASSERT_GE(probeProof(probe).chunks, 2u);

  // Chunk 0 sits right after the 12-byte header. Its 17-byte frame is
  // (tag:1, firstClause:4, clauseCount:4, payloadBytes:4, crc:4), so the
  // payload length at frame offset 9 locates chunk 1.
  const std::size_t chunk0 = 12;
  const std::size_t chunk1 = chunk0 + 17 + leU32(bytes, chunk0 + 9);

  const std::pair<std::size_t, std::string> cases[] = {
      {chunk0 + 17, "chunk 0 at byte offset 12"},
      {chunk1 + 17, "chunk 1 at byte offset " + std::to_string(chunk1)},
  };
  for (const auto& [flipAt, context] : cases) {
    std::string mutated = bytes;
    mutated[flipAt] = static_cast<char>(mutated[flipAt] ^ 0x20);
    try {
      (void)fromCpf(mutated);
      FAIL() << "corruption at byte " << flipAt << " accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(context), std::string::npos)
          << e.what();
    }
  }
}

TEST(ProofIoCorruption, TruncationErrorsCarryByteContext) {
  const std::string bytes = toCpf(add16Proof(true));

  // A prefix too small to even hold a footer names its byte count.
  try {
    (void)fromCpf(bytes.substr(0, 20));
    FAIL() << "20-byte prefix accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("20 bytes"), std::string::npos)
        << e.what();
  }

  // A mid-chunk truncation and a clipped trailing magic both surface as
  // truncation (the footer scan fails before any chunk is touched), for
  // probeProof exactly like for readProof.
  for (const std::size_t keep : {bytes.size() / 2, bytes.size() - 3}) {
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    try {
      (void)probeProof(in);
      FAIL() << "prefix of " << keep << " bytes accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ProofIoCorruption, EmptyAndGarbageStreams) {
  EXPECT_THROW((void)fromCpf(std::string()), std::runtime_error);
  EXPECT_THROW((void)fromCpf(std::string(200, 'z')), std::runtime_error);
  EXPECT_THROW((void)checkProofFile("/nonexistent/path.cpf"),
               std::runtime_error);
}

// ---- streaming checker ----------------------------------------------------

void expectSameVerdict(const proof::CheckResult& memory,
                       const proof::CheckResult& disk) {
  EXPECT_EQ(memory.ok, disk.ok);
  EXPECT_EQ(memory.error, disk.error);
  EXPECT_EQ(memory.failedClause, disk.failedClause);
  EXPECT_EQ(memory.axiomsChecked, disk.axiomsChecked);
  EXPECT_EQ(memory.derivedChecked, disk.derivedChecked);
  EXPECT_EQ(memory.resolutions, disk.resolutions);
}

TEST(ProofIoStreamCheck, VerdictIdenticalToInMemoryOnEngineProofs) {
  for (const bool sweeping : {true, false}) {
    const ProofLog& log = add16Proof(sweeping);
    const proof::CheckResult memory = proof::checkProof(log);

    std::istringstream in(toCpf(log), std::ios::binary);
    StreamCheckStats stats;
    const proof::CheckResult disk = checkProofStream(in, {}, &stats);
    expectSameVerdict(memory, disk);
    EXPECT_TRUE(disk.ok);

    // The bounded-memory claim, asserted via the instrumented high-water
    // counters: the live set must stay strictly below the full proof.
    EXPECT_GT(stats.liveClausesPeak, 0u);
    EXPECT_LT(stats.liveClausesPeak, stats.container.clauses);
    EXPECT_LT(stats.liveLiteralsPeak, stats.totalLiterals);
    EXPECT_GT(stats.releasedEarly, 0u);
  }
}

TEST(ProofIoStreamCheck, RootlessProofMatchesInMemoryMessage) {
  Rng rng(21);
  const ProofLog log = randomLog(rng, false);
  std::istringstream in(toCpf(log), std::ios::binary);
  const proof::CheckResult disk = checkProofStream(in);
  const proof::CheckResult memory = proof::checkProof(log);
  EXPECT_FALSE(disk.ok);
  expectSameVerdict(memory, disk);
}

TEST(ProofIoStreamCheck, DefectiveChainSameFailureAsInMemory) {
  // A resolvent mismatch must fail identically on both paths: same clause,
  // same message (both replay through proof::replayChain).
  ProofLog log;
  const auto a = log.addAxiom(std::vector<sat::Lit>{
      sat::Lit::make(0, false), sat::Lit::make(1, false)});
  const auto b = log.addAxiom(std::vector<sat::Lit>{
      sat::Lit::make(0, true), sat::Lit::make(2, false)});
  // Correct resolvent is {1, 2}; record {1} instead.
  log.addDerived(std::vector<sat::Lit>{sat::Lit::make(1, false)},
                 std::vector<ClauseId>{a, b});

  proof::CheckOptions memoryOptions;
  memoryOptions.requireRoot = false;
  const proof::CheckResult memory = proof::checkProof(log, memoryOptions);
  ASSERT_FALSE(memory.ok);

  std::istringstream in(toCpf(log), std::ios::binary);
  StreamCheckOptions diskOptions;
  diskOptions.requireRoot = false;
  const proof::CheckResult disk = checkProofStream(in, diskOptions);
  expectSameVerdict(memory, disk);
}

TEST(ProofIoStreamCheck, AxiomValidatorParity) {
  ProofLog log;
  log.addAxiom(std::vector<sat::Lit>{sat::Lit::make(4, false)});
  const auto rejectAll = [](std::span<const sat::Lit>) { return false; };

  proof::CheckOptions memoryOptions;
  memoryOptions.requireRoot = false;
  memoryOptions.axiomValidator = rejectAll;
  const proof::CheckResult memory = proof::checkProof(log, memoryOptions);

  std::istringstream in(toCpf(log), std::ios::binary);
  StreamCheckOptions diskOptions;
  diskOptions.requireRoot = false;
  diskOptions.axiomValidator = rejectAll;
  const proof::CheckResult disk = checkProofStream(in, diskOptions);
  expectSameVerdict(memory, disk);
  EXPECT_FALSE(disk.ok);
}

// ---- end-to-end disk certification through the engine layer ---------------

class ProofIoCertify : public testing::TestWithParam<bool> {};

TEST_P(ProofIoCertify, CheckMiterCertifiesFromDisk) {
  const bool sweeping = GetParam();
  const std::string path = testing::TempDir() + "cpf_certify_" +
                           (sweeping ? "sweep" : "mono") + ".cpf";
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(16),
                                         gen::carryLookaheadAdder(16, 4));
  cec::EngineConfig config;
  if (sweeping) {
    config.engine = cec::SweepOptions();
  } else {
    config.engine = cec::MonolithicOptions();
  }
  config.proofPath = path;

  proof::ProofLog raw;
  const cec::CertifyReport report = cec::checkMiter(miter, config, &raw);
  EXPECT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
  EXPECT_TRUE(report.proofChecked);
  EXPECT_TRUE(report.disk.written);
  EXPECT_TRUE(report.disk.checked);
  EXPECT_EQ(report.disk.write.clauses, raw.numClauses());
  EXPECT_EQ(report.disk.write.root, raw.root());
  EXPECT_GT(report.disk.write.bytes, 0u);

  // Verdict bit-identity: the streaming check of the container equals the
  // in-memory checkProof of the raw log under the same axiom validator.
  proof::CheckOptions memoryOptions;
  memoryOptions.axiomValidator = cec::miterAxiomValidator(miter);
  const proof::CheckResult memory = proof::checkProof(raw, memoryOptions);
  StreamCheckOptions diskOptions;
  diskOptions.axiomValidator = cec::miterAxiomValidator(miter);
  StreamCheckStats stats;
  const proof::CheckResult disk = checkProofFile(path, diskOptions, &stats);
  expectSameVerdict(memory, disk);
  EXPECT_TRUE(disk.ok);

  // Peak checker memory bounded by live clauses, not proof size.
  EXPECT_LT(stats.liveClausesPeak, stats.container.clauses);
  EXPECT_LT(stats.liveLiteralsPeak, stats.totalLiterals);

  // The file on disk equals a post-hoc serialization of the raw log (with
  // the same identity var-map footer checkMiter attaches): the
  // streamed-during-solving path loses nothing.
  FooterSections sections;
  sections.varMap.resize(miter.numNodes());
  for (std::size_t i = 0; i < sections.varMap.size(); ++i) {
    sections.varMap[i] = static_cast<std::uint32_t>(i);
  }
  std::ostringstream postHoc(std::ios::binary);
  writeProof(raw, postHoc, {}, &sections);
  std::ifstream back(path, std::ios::binary);
  std::ostringstream fileBytes(std::ios::binary);
  fileBytes << back.rdbuf();
  EXPECT_EQ(fileBytes.str(), postHoc.str());

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Engines, ProofIoCertify, testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("sweeping")
                                             : std::string("monolithic");
                         });

TEST(ProofIoCertifyMore, InequivalentMiterWritesRootlessContainer) {
  const std::string path = testing::TempDir() + "cpf_sat.cpf";
  aig::Aig bad = gen::rippleCarryAdder(8);
  bad.setOutput(0, !bad.output(0));
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(8), bad);

  cec::EngineConfig config;
  config.engine = cec::MonolithicOptions();
  config.proofPath = path;
  const cec::CertifyReport report = cec::checkMiter(miter, config);
  EXPECT_EQ(report.cec.verdict, cec::Verdict::kInequivalent);
  EXPECT_TRUE(report.disk.written);
  EXPECT_FALSE(report.disk.checked);
  EXPECT_FALSE(report.proofChecked);

  // The container is still well-formed — just rootless, so a refutation
  // check of it must fail with the standard message.
  const proof::CheckResult disk = checkProofFile(path);
  EXPECT_FALSE(disk.ok);
  EXPECT_EQ(disk.error, "proof has no empty-clause root");
  std::remove(path.c_str());
}

TEST(ProofIoCertifyMore, BddEngineWritesEmptyContainer) {
  const std::string path = testing::TempDir() + "cpf_bdd.cpf";
  const aig::Aig miter =
      cec::buildMiter(gen::parityChain(8), gen::parityTree(8));
  cec::EngineConfig config;
  config.engine = cec::BddCecOptions();
  config.proofPath = path;
  const cec::CertifyReport report = cec::checkMiter(miter, config);
  EXPECT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
  EXPECT_TRUE(report.disk.written);
  EXPECT_EQ(report.disk.write.clauses, 0u);
  EXPECT_FALSE(report.proofChecked);  // BDD produces no proof
  const ContainerInfo info = [&] {
    std::ifstream in(path, std::ios::binary);
    return probeProof(in);
  }();
  EXPECT_EQ(info.clauses, 0u);
  std::remove(path.c_str());
}

// ---- var-map footer section -----------------------------------------------

TEST(ProofIoVarMap, RoundTripsThroughFooter) {
  Rng rng(7);
  const ProofLog log = randomLog(rng, /*withRoot=*/true);
  // A non-identity map with jumps in both directions exercises the zigzag
  // delta coding.
  const std::vector<std::uint32_t> varMap = {5, 0, 1000000, 3, 3, 17};
  FooterSections sections;
  sections.varMap = varMap;
  std::ostringstream out(std::ios::binary);
  writeProof(log, out, {}, &sections);
  const std::string bytes = out.str();

  std::istringstream probe(bytes, std::ios::binary);
  EXPECT_EQ(probeProof(probe).varMap, varMap);
  // The payload round-trips unchanged next to the new section.
  expectLogsEqual(fromCpf(bytes), log);
}

TEST(ProofIoVarMap, CoexistsWithCubeSpans) {
  Rng rng(11);
  const ProofLog log = randomLog(rng, /*withRoot=*/true);
  FooterSections sections;
  sections.cubeSpans = {{2, 1, 3}, {1, 0, 0}};
  sections.varMap = {0, 1, 2, 3};
  std::ostringstream out(std::ios::binary);
  writeProof(log, out, {}, &sections);
  std::istringstream probe(out.str(), std::ios::binary);
  const ContainerInfo info = probeProof(probe);
  ASSERT_EQ(info.cubeSpans.size(), 2u);
  EXPECT_EQ(info.cubeSpans[0].literals, 2u);
  EXPECT_EQ(info.varMap, sections.varMap);
}

TEST(ProofIoVarMap, AbsentInPlainContainers) {
  // Backward compatibility: a container written without the section (every
  // pre-existing artifact) probes with an empty map.
  Rng rng(3);
  const std::string bytes = toCpf(randomLog(rng, /*withRoot=*/true));
  std::istringstream probe(bytes, std::ios::binary);
  EXPECT_TRUE(probeProof(probe).varMap.empty());
}

TEST(ProofIoVarMap, IdentityMapCostsAboutOneBytePerNode) {
  Rng rng(19);
  const ProofLog log = randomLog(rng, /*withRoot=*/true);
  const std::string plain = toCpf(log);
  std::vector<std::uint32_t> identity(4096);
  for (std::uint32_t i = 0; i < identity.size(); ++i) identity[i] = i;
  FooterSections sections;
  sections.varMap = identity;
  std::ostringstream out(std::ios::binary);
  writeProof(log, out, {}, &sections);
  // Delta+zigzag makes the identity discipline ~1 byte per node (plus the
  // count, the forced empty cube section, and the first entry's varint).
  EXPECT_LE(out.str().size(), plain.size() + identity.size() + 16);
}

TEST(ProofIoVarMap, WriterRejectsSetAfterFinish) {
  std::ostringstream out(std::ios::binary);
  ProofWriter writer(out);
  writer.onClause(1, std::vector<sat::Lit>{sat::Lit::make(0, false)}, {});
  (void)writer.finish();
  const std::vector<std::uint32_t> map = {0, 1};
  EXPECT_THROW(writer.setVarMap(map), std::logic_error);
}

TEST(ProofIoVarMap, CheckMiterRecordsIdentityMap) {
  // Every engine container published by checkMiter carries the encoder's
  // node -> variable discipline, so stored refutations stay auditable.
  const std::string path = testing::TempDir() + "cpf_varmap.cpf";
  const aig::Aig miter =
      cec::buildMiter(gen::rippleCarryAdder(4), gen::carrySelectAdder(4, 2));
  cec::EngineConfig config;
  config.proofPath = path;
  const cec::CertifyReport report = cec::checkMiter(miter, config);
  EXPECT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
  const ContainerInfo info = [&] {
    std::ifstream in(path, std::ios::binary);
    return probeProof(in);
  }();
  ASSERT_EQ(info.varMap.size(), miter.numNodes());
  for (std::uint32_t i = 0; i < info.varMap.size(); ++i) {
    EXPECT_EQ(info.varMap[i], i);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::proofio
