// Mutation self-test harness for the static Tseitin-encoding auditor
// (cnf::auditEncoding, DESIGN.md §11): every supported corruption of a
// CNF/var-map is injected deliberately and must come back as its exact
// stable E1xx code — flipped literals, dropped/duplicated/foreign
// clauses, missing units, stale and double-mapped var-maps, swapped
// miter XOR inputs — plus the determinism bar (findings bit-identical at
// 1/2/4/8 threads) and the end-to-end wiring through cec::checkMiter and
// the batch service.
#include "src/cnf/audit.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/aig/aig.h"
#include "src/base/diagnostics.h"
#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/cnf/cnf.h"
#include "src/gen/arith.h"
#include "src/serve/service.h"

namespace cp::cnf {
namespace {

using diag::Diagnostic;
using diag::Severity;

/// One audit invocation's full observable output.
struct AuditRun {
  AuditStats stats;
  std::vector<Diagnostic> findings;
};

AuditRun runAudit(const aig::Aig& graph, const Cnf& cnf, const VarMap& map,
                  const AuditOptions& options = {}) {
  diag::DiagnosticCollector collector;
  AuditRun run;
  run.stats = auditEncoding(graph, cnf, map, collector, options);
  run.findings = collector.diagnostics();
  return run;
}

AuditRun runAudit(const aig::Aig& graph, const Cnf& cnf,
                  const AuditOptions& options = {}) {
  return runAudit(graph, cnf, VarMap::identity(graph.numNodes()), options);
}

std::uint64_t countCode(const AuditRun& run, const std::string& code) {
  std::uint64_t n = 0;
  for (const Diagnostic& d : run.findings) n += d.code == code ? 1 : 0;
  return n;
}

/// A two-input XOR as an AIG: constant + 2 inputs + 3 ANDs = 6 nodes,
/// 11 clauses with the output assertion. Small enough that every clause
/// index is predictable.
aig::Aig xorGraph() {
  aig::Aig g;
  const aig::Edge a = g.addInput();
  const aig::Edge b = g.addInput();
  g.addOutput(g.addXor(a, b));
  return g;
}

Cnf dropClause(Cnf cnf, std::size_t index) {
  cnf.clauses.erase(cnf.clauses.begin() +
                    static_cast<std::ptrdiff_t>(index));
  return cnf;
}

/// Index of the first clause with exactly `width` literals.
std::size_t firstClauseOfWidth(const Cnf& cnf, std::size_t width) {
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    if (cnf.clauses[i].size() == width) return i;
  }
  ADD_FAILURE() << "no clause of width " << width;
  return 0;
}

TEST(EncodingAudit, CleanMiterEncodingIsFindingFree) {
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(4),
                                         gen::carrySelectAdder(4, 2));
  const AuditRun run = runAudit(miter, encodeWithOutputAssertion(miter));
  EXPECT_TRUE(run.stats.ok());
  EXPECT_EQ(run.stats.errors, 0u);
  EXPECT_EQ(run.stats.warnings, 0u);
  EXPECT_EQ(run.stats.nodesAudited, miter.numNodes());
  EXPECT_EQ(run.stats.matchedClauses, run.stats.expectedClauses);
  EXPECT_EQ(run.stats.expectedClauses,
            std::uint64_t{2} + 3 * miter.numAnds());
  // The only finding on a clean audit is the E111 summary.
  ASSERT_EQ(run.findings.size(), 1u);
  EXPECT_EQ(run.findings[0].code, "E111");
  EXPECT_EQ(run.findings[0].severity, Severity::kInfo);
}

TEST(EncodingAudit, BareEncodeAuditsWithoutAssertion) {
  const aig::Aig g = xorGraph();
  AuditOptions options;
  options.expectOutputAssertion = false;
  const AuditRun run = runAudit(g, encode(g), options);
  EXPECT_TRUE(run.stats.ok());
  EXPECT_EQ(run.stats.warnings, 0u);
  EXPECT_EQ(run.stats.expectedClauses, std::uint64_t{1} + 3 * g.numAnds());
}

TEST(EncodingAudit, FlippedLiteralIsE105) {
  const aig::Aig g = xorGraph();
  Cnf cnf = encodeWithOutputAssertion(g);
  // Flip one literal of a two-literal gate clause (~out | a): the clause
  // no longer matches, so the gate is also reported incomplete.
  const std::size_t target = firstClauseOfWidth(cnf, 2);
  cnf.clauses[target][1] = ~cnf.clauses[target][1];
  const AuditRun run = runAudit(g, cnf);
  EXPECT_FALSE(run.stats.ok());
  EXPECT_EQ(countCode(run, "E105"), 1u);
  EXPECT_EQ(countCode(run, "E104"), 1u);
  EXPECT_EQ(run.stats.errors, 2u);
}

TEST(EncodingAudit, DroppedGateClauseIsE104) {
  const aig::Aig g = xorGraph();
  const Cnf cnf = encodeWithOutputAssertion(g);
  const AuditRun run =
      runAudit(g, dropClause(cnf, firstClauseOfWidth(cnf, 3)));
  EXPECT_FALSE(run.stats.ok());
  EXPECT_EQ(countCode(run, "E104"), 1u);
  EXPECT_EQ(run.stats.errors, 1u);
  EXPECT_EQ(run.stats.matchedClauses, run.stats.expectedClauses - 1);
}

TEST(EncodingAudit, DroppedConstantUnitIsE107) {
  const aig::Aig g = xorGraph();
  // Clause 0 is the constant-false pin (encode() emits it first).
  const AuditRun run = runAudit(g, dropClause(encodeWithOutputAssertion(g), 0));
  EXPECT_EQ(countCode(run, "E107"), 1u);
  EXPECT_EQ(run.stats.errors, 1u);
}

TEST(EncodingAudit, DroppedOutputAssertionIsE108) {
  const aig::Aig g = xorGraph();
  const Cnf cnf = encodeWithOutputAssertion(g);
  const AuditRun run = runAudit(g, dropClause(cnf, cnf.clauses.size() - 1));
  EXPECT_EQ(countCode(run, "E108"), 1u);
  EXPECT_EQ(run.stats.errors, 1u);
}

TEST(EncodingAudit, DuplicatedClauseIsE109Warning) {
  const aig::Aig g = xorGraph();
  Cnf cnf = encodeWithOutputAssertion(g);
  cnf.clauses.push_back(cnf.clauses[firstClauseOfWidth(cnf, 3)]);
  const AuditRun run = runAudit(g, cnf);
  // A duplicate does not change the encoded function: ok() holds, but the
  // warning gates --werror runs.
  EXPECT_TRUE(run.stats.ok());
  EXPECT_EQ(countCode(run, "E109"), 1u);
  EXPECT_EQ(run.stats.warnings, 1u);
  diag::DiagnosticCollector sink;
  (void)auditEncoding(g, cnf, VarMap::identity(g.numNodes()), sink);
  EXPECT_FALSE(sink.failed(/*werror=*/false));
  EXPECT_TRUE(sink.failed(/*werror=*/true));
}

TEST(EncodingAudit, ForeignClauseIsE106) {
  const aig::Aig g = xorGraph();
  Cnf cnf = encodeWithOutputAssertion(g);
  cnf.clauses.push_back({sat::Lit::make(1, false), sat::Lit::make(2, false),
                         sat::Lit::make(4, true)});
  const AuditRun run = runAudit(g, cnf);
  EXPECT_EQ(countCode(run, "E106"), 1u);
  EXPECT_EQ(run.stats.errors, 1u);
}

TEST(EncodingAudit, StaleVarMapSizeIsE101AndAbortsMatching) {
  const aig::Aig g = xorGraph();
  const Cnf cnf = encodeWithOutputAssertion(g);
  VarMap stale = VarMap::identity(g.numNodes() - 1);  // one node short
  const AuditRun run = runAudit(g, cnf, stale);
  EXPECT_FALSE(run.stats.ok());
  EXPECT_GE(countCode(run, "E101"), 1u);
  // Matching against a broken correspondence is skipped entirely: no
  // clause-level findings, only the map error(s) and the summary.
  EXPECT_EQ(countCode(run, "E104") + countCode(run, "E105") +
                countCode(run, "E106"),
            0u);
  EXPECT_EQ(run.stats.matchedClauses, 0u);
}

TEST(EncodingAudit, ClauseVariableOutOfRangeIsE101) {
  const aig::Aig g = xorGraph();
  Cnf cnf = encodeWithOutputAssertion(g);
  cnf.clauses.push_back({sat::Lit::make(cnf.numVars, false)});
  const AuditRun run = runAudit(g, cnf);
  EXPECT_GE(countCode(run, "E101"), 1u);
}

TEST(EncodingAudit, UnmappedNodeIsE103) {
  const aig::Aig g = xorGraph();
  const Cnf cnf = encodeWithOutputAssertion(g);
  VarMap map = VarMap::identity(g.numNodes());
  map.varOf[3] = sat::kNoVar;
  const AuditRun run = runAudit(g, cnf, map);
  EXPECT_EQ(countCode(run, "E103"), 1u);
  EXPECT_FALSE(run.stats.ok());
}

TEST(EncodingAudit, DoubleMappedNodesAreE102) {
  const aig::Aig g = xorGraph();
  const Cnf cnf = encodeWithOutputAssertion(g);
  VarMap map = VarMap::identity(g.numNodes());
  map.varOf[4] = map.varOf[3];
  const AuditRun run = runAudit(g, cnf, map);
  EXPECT_GE(countCode(run, "E102"), 1u);
  EXPECT_FALSE(run.stats.ok());
}

TEST(EncodingAudit, OutOfConeMissingClauseIsE110Warning) {
  // n3 = a & b drives the output; n4 = a & ~b dangles outside the cone.
  aig::Aig g;
  const aig::Edge a = g.addInput();
  const aig::Edge b = g.addInput();
  const aig::Edge n3 = g.addAnd(a, b);
  (void)g.addAnd(a, !b);
  g.addOutput(n3);
  Cnf cnf = encodeWithOutputAssertion(g);
  // Drop a gate clause of the dangling node 4 (its group is the last
  // three-clause block before the assertion).
  const AuditRun run = runAudit(g, dropClause(cnf, cnf.clauses.size() - 2));
  EXPECT_TRUE(run.stats.ok());  // sound: the asserted cone is intact
  EXPECT_EQ(countCode(run, "E110"), 1u);
  EXPECT_EQ(countCode(run, "E104"), 0u);
  EXPECT_EQ(run.stats.warnings, 1u);
}

TEST(EncodingAudit, SwappedMiterXorInputsAreDetected) {
  // The classic encoding bug from the paper's setting: the CNF encodes the
  // miter with its XOR-stage inputs swapped — same interface, same node
  // count, different wiring. The audit must refuse to match it.
  const aig::Aig left = gen::parityChain(4);
  const aig::Aig right = gen::parityTree(4);
  const aig::Aig miter = cec::buildMiter(left, right);
  const aig::Aig swapped = cec::buildMiter(right, left);
  ASSERT_EQ(miter.numNodes(), swapped.numNodes());
  const AuditRun run = runAudit(miter, encodeWithOutputAssertion(swapped));
  EXPECT_FALSE(run.stats.ok());
  EXPECT_GE(countCode(run, "E104"), 1u);
}

TEST(EncodingAudit, AuditsSelectedOutputAssertion) {
  aig::Aig g;
  const aig::Edge a = g.addInput();
  const aig::Edge b = g.addInput();
  g.addOutput(g.addAnd(a, b));
  g.addOutput(g.addAnd(a, !b));
  AuditOptions options;
  options.outputIndex = 1;
  const AuditRun run =
      runAudit(g, encodeWithOutputAssertion(g, 1), options);
  EXPECT_TRUE(run.stats.ok());
  EXPECT_EQ(run.stats.warnings, 0u);

  options.outputIndex = 2;
  diag::DiagnosticCollector sink;
  EXPECT_THROW(auditEncoding(g, encodeWithOutputAssertion(g),
                             VarMap::identity(g.numNodes()), sink, options),
               std::invalid_argument);
}

TEST(EncodingAudit, FindingsAreThreadCountInvariant) {
  // A corrupted CNF with every mutation class at once, audited at 1/2/4/8
  // threads with small batches: stats and the full findings list must be
  // bit-identical (the acceptance bar of DESIGN.md §11).
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(6),
                                         gen::carrySkipAdder(6, 2));
  Cnf cnf = encodeWithOutputAssertion(miter);
  const std::size_t flip = firstClauseOfWidth(cnf, 2);
  cnf.clauses[flip][1] = ~cnf.clauses[flip][1];
  cnf.clauses.push_back(cnf.clauses[firstClauseOfWidth(cnf, 3)]);
  cnf.clauses.push_back({sat::Lit::make(2, false), sat::Lit::make(5, false),
                         sat::Lit::make(9, false), sat::Lit::make(11, true)});
  cnf = dropClause(cnf, firstClauseOfWidth(cnf, 3));

  AuditOptions base;
  base.parallel.batchSize = 8;
  base.parallel.numThreads = 1;
  const AuditRun reference = runAudit(miter, cnf, base);
  EXPECT_FALSE(reference.stats.ok());
  EXPECT_GE(reference.findings.size(), 4u);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    AuditOptions options = base;
    options.parallel.numThreads = threads;
    const AuditRun run = runAudit(miter, cnf, options);
    EXPECT_EQ(run.stats, reference.stats)
        << "stats divergence at " << threads << " threads";
    EXPECT_EQ(run.findings, reference.findings)
        << "finding divergence at " << threads << " threads";
  }
}

TEST(EncodingAudit, CheckMiterAuditsUnderEveryEngine) {
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(3),
                                         gen::carryLookaheadAdder(3, 3));
  const std::vector<cec::EngineOptions> engines = {
      cec::SweepOptions{}, cec::MonolithicOptions{}, cube::CubeOptions{},
      cec::BddCecOptions{}};
  for (const auto& engine : engines) {
    cec::EngineConfig config;
    config.engine = engine;
    config.auditEncoding = true;
    const cec::CertifyReport report = cec::checkMiter(miter, config);
    EXPECT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
    EXPECT_TRUE(report.audit.ran);
    EXPECT_TRUE(report.audit.ok);
    EXPECT_EQ(report.audit.stats.errors, 0u);
    EXPECT_EQ(report.audit.stats.warnings, 0u);
  }
}

TEST(EncodingAudit, CheckMiterAuditIsOptIn) {
  const aig::Aig miter = cec::buildMiter(gen::parityChain(4),
                                         gen::parityTree(4));
  const cec::CertifyReport report = cec::checkMiter(miter);
  EXPECT_FALSE(report.audit.ran);
  EXPECT_TRUE(report.audit.findings.empty());
}

TEST(EncodingAudit, BatchServiceRecordsAuditOutcome) {
  serve::ServiceOptions service;
  service.parallel.numThreads = 2;
  serve::BatchService batch(service);
  serve::JobOptions withAudit;
  withAudit.engine.auditEncoding = true;
  const std::uint64_t audited = batch.submit(serve::makePairJob(
      "audited", gen::rippleCarryAdder(3), gen::carrySelectAdder(3, 1),
      withAudit));
  const std::uint64_t plain = batch.submit(serve::makePairJob(
      "plain", gen::parityChain(5), gen::parityTree(5)));

  const serve::JobRecord auditedRecord = batch.wait(audited);
  EXPECT_EQ(auditedRecord.state, serve::JobState::kDone);
  EXPECT_TRUE(auditedRecord.auditRan);
  EXPECT_TRUE(auditedRecord.auditOk);
  EXPECT_EQ(auditedRecord.auditErrors, 0u);

  const serve::JobRecord plainRecord = batch.wait(plain);
  EXPECT_FALSE(plainRecord.auditRan);
}

}  // namespace
}  // namespace cp::cnf
