#include "src/aig/cuts.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/gen/arith.h"
#include "src/gen/random_aig.h"
#include "src/rewrite/restructure.h"

namespace cp::aig {
namespace {

/// Evaluates a cut's truth-table claim on *feasible* leaf assignments:
/// for every primary-input assignment, the node's value must equal the
/// truth bit indexed by the observed leaf values. (Leaves may be
/// interdependent, so not every 2^k row is realizable; on unrealizable
/// rows different valid cut merges may legitimately disagree.)
void verifyCut(const Aig& g, std::uint32_t node, const Cut& cut) {
  ASSERT_LE(cut.leaves.size(), 6u);
  ASSERT_LE(g.numInputs(), 16u);
  std::vector<bool> value(g.numNodes(), false);
  for (std::uint64_t bits = 0; bits < (1ULL << g.numInputs()); ++bits) {
    for (std::uint32_t i = 0; i < g.numInputs(); ++i) {
      value[g.inputNode(i)] = (bits >> i) & 1;
    }
    for (std::uint32_t n = 1; n <= node; ++n) {
      if (!g.isAnd(n)) continue;
      const Edge a = g.fanin0(n);
      const Edge b = g.fanin1(n);
      value[n] = (value[a.node()] != a.complemented()) &&
                 (value[b.node()] != b.complemented());
    }
    std::uint32_t row = 0;
    for (std::size_t i = 0; i < cut.leaves.size(); ++i) {
      row |= static_cast<std::uint32_t>(value[cut.leaves[i]]) << i;
    }
    const bool claimed = (cut.truth >> row) & 1;
    ASSERT_EQ(claimed, static_cast<bool>(value[node]))
        << "node " << node << " inputs " << bits << " row " << row;
  }
}

TEST(Cuts, TrivialAndInputCuts) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge n = g.addAnd(a, !b);
  g.addOutput(n);
  const auto cuts = enumerateCuts(g);
  // Input: one trivial cut.
  ASSERT_EQ(cuts[a.node()].size(), 1u);
  EXPECT_EQ(cuts[a.node()][0].leaves, std::vector<std::uint32_t>{a.node()});
  // AND node: {a, b} cut plus its trivial cut.
  bool sawPair = false;
  for (const Cut& cut : cuts[n.node()]) {
    verifyCut(g, n.node(), cut);
    if (cut.leaves.size() == 2) sawPair = true;
  }
  EXPECT_TRUE(sawPair);
}

TEST(Cuts, TruthTablesMatchEvaluationOnAdder) {
  const Aig g = gen::rippleCarryAdder(3);
  const auto cuts = enumerateCuts(g);
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    if (!g.isAnd(n)) continue;
    for (const Cut& cut : cuts[n]) verifyCut(g, n, cut);
  }
}

TEST(Cuts, TruthTablesMatchOnRandomGraphs) {
  Rng rng(77);
  gen::RandomAigOptions opt;
  opt.numInputs = 8;
  opt.numAnds = 60;
  const Aig g = gen::randomAig(opt, rng);
  CutOptions cutOpt;
  cutOpt.k = 5;
  const auto cuts = enumerateCuts(g, cutOpt);
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    if (!g.isAnd(n)) continue;
    for (const Cut& cut : cuts[n]) verifyCut(g, n, cut);
  }
}

TEST(Cuts, RespectsLimits) {
  const Aig g = gen::carryLookaheadAdder(8, 4);
  CutOptions options;
  options.k = 3;
  options.maxCutsPerNode = 4;
  const auto cuts = enumerateCuts(g, options);
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    EXPECT_LE(cuts[n].size(), options.maxCutsPerNode + 1);  // + trivial
    for (const Cut& cut : cuts[n]) {
      EXPECT_LE(cut.leaves.size(), 3u);
    }
  }
}

TEST(Cuts, RejectsBadK) {
  Aig g;
  (void)g.addInput();
  CutOptions options;
  options.k = 7;
  EXPECT_THROW((void)enumerateCuts(g, options), std::invalid_argument);
}

void expectSameFunctionCertified(const Aig& a, const Aig& b) {
  const Aig miter = cec::buildMiter(a, b);
  const cec::CertifyReport report = cec::checkMiter(miter);
  ASSERT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
  ASSERT_TRUE(report.proofChecked) << report.check.error;
}

TEST(CutSweep, MergesRestructuredDuplicates) {
  const Aig base = gen::carrySelectAdder(8, 2);
  Rng rng(78);
  const Aig variant = rewrite::restructure(base, rng);
  Aig joint;
  std::vector<Edge> ins;
  for (std::uint32_t i = 0; i < base.numInputs(); ++i) {
    ins.push_back(joint.addInput());
  }
  for (const Edge e : joint.append(base, ins)) joint.addOutput(e);
  for (const Edge e : joint.append(variant, ins)) joint.addOutput(e);

  const CutSweepResult result = cutSweep(joint);
  EXPECT_GT(result.stats.merges, 0u);
  EXPECT_LT(result.stats.andsAfter, result.stats.andsBefore);
  expectSameFunctionCertified(joint, result.graph);
}

TEST(CutSweep, PreservesFunctionOnRandomGraphs) {
  Rng rng(79);
  for (int round = 0; round < 6; ++round) {
    gen::RandomAigOptions opt;
    opt.numInputs = 6;
    opt.numAnds = 90;
    opt.numOutputs = 3;
    const Aig g = gen::randomAig(opt, rng);
    const CutSweepResult result = cutSweep(g);
    for (int bits = 0; bits < 64; ++bits) {
      std::vector<bool> in(6);
      for (int i = 0; i < 6; ++i) in[i] = (bits >> i) & 1;
      ASSERT_EQ(g.evaluate(in), result.graph.evaluate(in))
          << "round " << round;
    }
  }
}

TEST(CutSweep, DetectsComplementPairs) {
  // XOR and XNOR structures over the same inputs: node-level complements.
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge viaXor = g.addXor(a, b);
  const Edge viaSop = g.addOr(g.addAnd(a, b), g.addAnd(!a, !b));  // XNOR
  g.addOutput(viaXor);
  g.addOutput(viaSop);
  const CutSweepResult result = cutSweep(g);
  EXPECT_GT(result.stats.merges, 0u);
  expectSameFunctionCertified(g, result.graph);
  // The two outputs now feed from one node, complemented.
  EXPECT_EQ(result.graph.output(0).node(), result.graph.output(1).node());
}

TEST(CutSweep, IdempotentWhenNothingToMerge) {
  const Aig g = gen::rippleCarryAdder(6);
  const CutSweepResult once = cutSweep(g);
  const CutSweepResult twice = cutSweep(once.graph);
  EXPECT_EQ(twice.stats.merges, 0u);
  EXPECT_EQ(twice.stats.andsAfter, once.stats.andsAfter);
}

}  // namespace
}  // namespace cp::aig
