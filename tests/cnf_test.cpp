#include "src/cnf/cnf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/cnf/dimacs.h"
#include "src/gen/arith.h"
#include "src/sat/solver.h"

namespace cp::cnf {
namespace {

using aig::Aig;
using aig::Edge;
using sat::LBool;
using sat::Lit;

TEST(Cnf, LitOfMapsNodeAndComplement) {
  const Edge e = Edge::make(5, true);
  EXPECT_EQ(litOf(e).var(), 5u);
  EXPECT_TRUE(litOf(e).negated());
  EXPECT_EQ(litOf(!e), ~litOf(e));
}

TEST(Cnf, AndGateClausesEncodeConjunction) {
  // Check the three clauses against the full truth table of out = a & b.
  const Lit out = Lit::make(0, false);
  const Lit a = Lit::make(1, false);
  const Lit b = Lit::make(2, true);  // complemented input
  const auto gate = andGateClauses(out, a, b);
  for (int bits = 0; bits < 8; ++bits) {
    const bool vo = bits & 1, va = bits & 2, vb = bits & 4;
    auto litTrue = [&](Lit l) {
      const bool base = l.var() == 0 ? vo : (l.var() == 1 ? va : vb);
      return base != l.negated();
    };
    bool allClausesHold = true;
    for (const auto& clause : gate) {
      bool any = false;
      for (const Lit l : clause) any |= litTrue(l);
      allClausesHold &= any;
    }
    const bool functional = vo == (va && !vb);
    EXPECT_EQ(allClausesHold, functional) << "bits=" << bits;
  }
}

TEST(Cnf, EncodeCountsAreExact) {
  const Aig g = gen::rippleCarryAdder(4);
  const Cnf cnf = encode(g);
  EXPECT_EQ(cnf.numVars, g.numNodes());
  EXPECT_EQ(cnf.clauses.size(), 1u + 3u * g.numAnds());
  const Cnf asserted = encodeWithOutputAssertion(g);
  EXPECT_EQ(asserted.clauses.size(), cnf.clauses.size() + 1);
}

TEST(Cnf, EncodingIsEquisatisfiableWithCircuit) {
  // For a small circuit, every satisfying assignment of the CNF restricted
  // to the inputs matches circuit evaluation, and forcing an output value
  // consistent/inconsistent with the function flips satisfiability.
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  g.addOutput(g.addXor(a, b));

  for (int bits = 0; bits < 4; ++bits) {
    const bool va = bits & 1, vb = bits & 2;
    const bool expected = g.evaluate({va, vb})[0];
    for (bool asserted : {false, true}) {
      sat::Solver s;
      const Cnf cnf = encode(g);
      for (std::uint32_t v = 0; v < cnf.numVars; ++v) (void)s.newVar();
      for (const auto& clause : cnf.clauses) ASSERT_TRUE(s.addClause(clause));
      // Pin the inputs and the output.
      ASSERT_TRUE(s.addClause(
          {Lit::make(static_cast<sat::Var>(a.node()), !va)}));
      ASSERT_TRUE(s.addClause(
          {Lit::make(static_cast<sat::Var>(b.node()), !vb)}));
      const Lit outLit = litOf(g.output(0)) ^ !asserted;
      const bool consistent = s.addClause({outLit});
      const LBool verdict = consistent ? s.solve() : LBool::kFalse;
      EXPECT_EQ(verdict == LBool::kTrue, expected == asserted)
          << "inputs " << va << vb << " asserted " << asserted;
    }
  }
}

TEST(Dimacs, RoundTrip) {
  const Aig g = gen::parityTree(4);
  const Cnf cnf = encodeWithOutputAssertion(g);
  std::stringstream ss;
  writeDimacs(cnf, ss);
  const Cnf back = readDimacs(ss);
  EXPECT_EQ(back.numVars, cnf.numVars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
  }
}

TEST(Dimacs, ParsesCommentsAndMultiClauseLines) {
  std::stringstream ss(
      "c a comment\np cnf 3 3\nc another\n1 -2 0 2 3 0\n-1 0\n");
  const Cnf cnf = readDimacs(ss);
  EXPECT_EQ(cnf.numVars, 3u);
  ASSERT_EQ(cnf.clauses.size(), 3u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
  EXPECT_EQ(cnf.clauses[2].size(), 1u);
}

TEST(Dimacs, RejectsMissingHeader) {
  std::stringstream ss("1 2 0\n");
  EXPECT_THROW((void)readDimacs(ss), std::runtime_error);
}

TEST(Dimacs, RejectsVariableOutOfRange) {
  std::stringstream ss("p cnf 2 1\n3 0\n");
  EXPECT_THROW((void)readDimacs(ss), std::runtime_error);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  std::stringstream ss("p cnf 2 1\n1 2\n");
  EXPECT_THROW((void)readDimacs(ss), std::runtime_error);
}

TEST(Dimacs, RejectsDeclaredClauseCountMismatch) {
  // Two clauses declared, three present: a truncated or concatenated file
  // must not silently parse. The message carries both counts.
  std::stringstream ss("p cnf 2 2\n1 0\n2 0\n-1 0\n");
  try {
    (void)readDimacs(ss);
    FAIL() << "mismatched clause count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "dimacs: problem line declares 2 clauses but 3 were read");
  }
  std::stringstream tooFew("p cnf 2 2\n1 0\n");
  EXPECT_THROW((void)readDimacs(tooFew), std::runtime_error);
}

}  // namespace
}  // namespace cp::cnf
