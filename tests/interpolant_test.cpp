#include "src/proof/interpolant.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cnf/cnf.h"
#include "src/proof/checker.h"
#include "src/sat/solver.h"

namespace cp::proof {
namespace {

using sat::Lit;
using sat::Var;

Lit pos(Var v) { return Lit::make(v, false); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(Interpolant, SingleSharedVariable) {
  // A = { (g) }, B = { (~g) }: the interpolant must be exactly "g".
  ProofLog log;
  sat::Solver s(&log);
  const Var g = s.newVar();
  ASSERT_TRUE(s.addClause({pos(g)}));
  EXPECT_FALSE(s.addClause({neg(g)}));
  ASSERT_TRUE(log.hasRoot());

  std::vector<char> inA(log.numClauses() + 1, 0);
  inA[1] = 1;  // the first axiom (g) is A
  const Interpolant itp = computeInterpolant(log, inA);
  ASSERT_EQ(itp.sharedVars.size(), 1u);
  EXPECT_EQ(itp.sharedVars[0], g);
  EXPECT_TRUE(itp.circuit.evaluate({true})[0]);
  EXPECT_FALSE(itp.circuit.evaluate({false})[0]);
}

TEST(Interpolant, ImplicationChainThroughSharedLink) {
  // A: (a), (~a | g)       -- implies g
  // B: (~g | b), (~b), ... -- refutes g
  // Interpolant over {g} must be "g".
  ProofLog log;
  sat::Solver s(&log);
  const Var a = s.newVar();
  const Var g = s.newVar();
  const Var b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a)}));           // axiom 1 (A)
  ASSERT_TRUE(s.addClause({neg(a), pos(g)}));   // axiom 2 (A)
  ASSERT_TRUE(s.addClause({neg(g), pos(b)}));   // axiom 3 (B)
  const bool ok = s.addClause({neg(b)});        // axiom 4 (B)
  if (ok) {
    ASSERT_EQ(s.solve(), sat::LBool::kFalse);
  }
  ASSERT_TRUE(log.hasRoot());

  std::vector<char> inA(log.numClauses() + 1, 0);
  inA[1] = inA[2] = 1;
  const Interpolant itp = computeInterpolant(log, inA);
  ASSERT_EQ(itp.sharedVars.size(), 1u);
  EXPECT_EQ(itp.sharedVars[0], g);
  EXPECT_TRUE(itp.circuit.evaluate({true})[0]);
  EXPECT_FALSE(itp.circuit.evaluate({false})[0]);
}

/// Encodes the interpolant circuit into `solver`, binding circuit input k
/// to existing solver variable sharedVars[k]. Returns the output literal.
Lit bindInterpolant(sat::Solver& solver, const Interpolant& itp) {
  const cnf::Cnf cnf = cnf::encode(itp.circuit);
  const Var base = solver.numVars();
  for (std::uint32_t v = 0; v < cnf.numVars; ++v) (void)solver.newVar();
  auto mapped = [&](Lit l) { return Lit::make(base + l.var(), l.negated()); };
  for (const auto& clause : cnf.clauses) {
    std::vector<Lit> shifted;
    for (const Lit l : clause) shifted.push_back(mapped(l));
    EXPECT_TRUE(solver.addClause(shifted));
  }
  for (std::size_t k = 0; k < itp.sharedVars.size(); ++k) {
    const Lit inputLit = mapped(cnf::litOf(
        aig::Edge::make(itp.circuit.inputNode(k), false)));
    const Lit original = pos(itp.sharedVars[k]);
    EXPECT_TRUE(solver.addClause({~inputLit, original}));
    EXPECT_TRUE(solver.addClause({inputLit, ~original}));
  }
  return mapped(cnf::litOf(itp.circuit.output(0)));
}

TEST(Interpolant, RandomPartitionedCnfsSatisfyCraigProperties) {
  Rng rng(777);
  int checked = 0;
  for (int round = 0; round < 80 && checked < 12; ++round) {
    // Variables: 0..3 A-local, 4..7 shared, 8..11 B-local.
    auto randomLit = [&](int lo, int hi) {
      return Lit::make(static_cast<Var>(lo + rng.below(hi - lo + 1)),
                       rng.flip());
    };
    std::vector<std::vector<Lit>> clausesA, clausesB;
    for (int c = 0; c < 30; ++c) {
      clausesA.push_back({randomLit(0, 7), randomLit(0, 7), randomLit(0, 7)});
    }
    for (int c = 0; c < 30; ++c) {
      clausesB.push_back(
          {randomLit(4, 11), randomLit(4, 11), randomLit(4, 11)});
    }

    ProofLog log;
    sat::Solver s(&log);
    for (int v = 0; v < 12; ++v) (void)s.newVar();
    std::vector<char> inA(1, 0);  // 1-based axiom marks, grown below
    bool consistent = true;
    for (const auto& cl : clausesA) {
      const auto before = log.numClauses();
      consistent = s.addClause(cl);
      // Mark every clause recorded by this call (axiom + derived ids are
      // interleaved; only axioms are consulted later).
      inA.resize(log.numClauses() + 1, 0);
      for (ClauseId id = before + 1; id <= log.numClauses(); ++id) {
        inA[id] = 1;
      }
      if (!consistent) break;
    }
    if (consistent) {
      for (const auto& cl : clausesB) {
        consistent = s.addClause(cl);
        inA.resize(log.numClauses() + 1, 0);
        if (!consistent) break;
      }
    }
    const auto verdict = consistent ? s.solve() : sat::LBool::kFalse;
    if (verdict != sat::LBool::kFalse) continue;  // need UNSAT instances
    inA.resize(log.numClauses() + 1, 0);
    ++checked;

    for (const auto system : {InterpolationSystem::kMcMillan,
                              InterpolationSystem::kPudlak}) {
    const Interpolant itp = computeInterpolant(log, inA, system);
    // Support: only shared variables (4..7).
    for (const Var v : itp.sharedVars) {
      EXPECT_GE(v, 4u);
      EXPECT_LE(v, 7u);
    }

    // Property 1: A and ~I is unsatisfiable.
    {
      sat::Solver check;
      for (int v = 0; v < 12; ++v) (void)check.newVar();
      bool sane = true;
      for (const auto& cl : clausesA) sane = sane && check.addClause(cl);
      if (sane) {
        const Lit out = bindInterpolant(check, itp);
        if (check.addClause({~out})) {
          EXPECT_EQ(check.solve(), sat::LBool::kFalse)
              << "A does not imply I (round " << round << ")";
        }
      }
    }
    // Property 2: I and B is unsatisfiable.
    {
      sat::Solver check;
      for (int v = 0; v < 12; ++v) (void)check.newVar();
      bool sane = true;
      for (const auto& cl : clausesB) sane = sane && check.addClause(cl);
      if (sane) {
        const Lit out = bindInterpolant(check, itp);
        if (check.addClause({out})) {
          EXPECT_EQ(check.solve(), sat::LBool::kFalse)
              << "I inconsistent with B (round " << round << ")";
        }
      }
    }
    }  // for system
  }
  EXPECT_GE(checked, 5);
}

TEST(Interpolant, RequiresRoot) {
  ProofLog log;
  (void)log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW((void)computeInterpolant(log, {0, 1}), std::invalid_argument);
}

TEST(Interpolant, RequiresAxiomCoverage) {
  ProofLog log;
  sat::Solver s(&log);
  const Var v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v)}));
  EXPECT_FALSE(s.addClause({neg(v)}));
  EXPECT_THROW((void)computeInterpolant(log, {}), std::invalid_argument);
}

}  // namespace
}  // namespace cp::proof
