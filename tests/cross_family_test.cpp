// Cross-product certification sweep: every pair of adder implementations
// must certify against every other, at several widths. This is the
// "consistent across a variety of benchmarks" claim of the evaluation,
// exercised as one parameterized property test.
#include <gtest/gtest.h>

#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/gen/arith.h"
#include "src/gen/prefix_adders.h"

namespace cp::cec {
namespace {

using aig::Aig;

using Builder = Aig (*)(std::uint32_t);

Aig cla(std::uint32_t w) { return gen::carryLookaheadAdder(w, 4); }
Aig csel(std::uint32_t w) { return gen::carrySelectAdder(w, 3); }
Aig cskip(std::uint32_t w) { return gen::carrySkipAdder(w, 2); }

const Builder kAdders[] = {
    gen::rippleCarryAdder, cla,      csel,
    cskip,                 gen::koggeStoneAdder,
    gen::sklanskyAdder,    gen::brentKungAdder,
};
constexpr const char* kNames[] = {"ripple", "cla",      "csel",    "cskip",
                                  "kogge",  "sklansky", "brentkung"};

struct CrossCase {
  std::size_t left;
  std::size_t right;
  std::uint32_t width;
};

class AdderCrossProduct : public testing::TestWithParam<CrossCase> {};

TEST_P(AdderCrossProduct, CertifiedEquivalent) {
  const auto& param = GetParam();
  const Aig left = kAdders[param.left](param.width);
  const Aig right = kAdders[param.right](param.width);
  const Aig miter = buildMiter(left, right);
  const CertifyReport report = checkMiter(miter);
  ASSERT_EQ(report.cec.verdict, Verdict::kEquivalent)
      << kNames[param.left] << " vs " << kNames[param.right] << " w"
      << param.width;
  EXPECT_TRUE(report.proofChecked) << report.check.error;
}

std::vector<CrossCase> allPairs() {
  std::vector<CrossCase> cases;
  for (std::size_t i = 0; i < std::size(kAdders); ++i) {
    for (std::size_t j = i + 1; j < std::size(kAdders); ++j) {
      for (const std::uint32_t width : {5u, 11u}) {
        cases.push_back({i, j, width});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AdderCrossProduct, testing::ValuesIn(allPairs()),
    [](const auto& info) {
      return std::string(kNames[info.param.left]) + "_" +
             kNames[info.param.right] + "_w" +
             std::to_string(info.param.width);
    });

}  // namespace
}  // namespace cp::cec
