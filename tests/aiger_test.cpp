#include "src/aig/aiger.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/base/rng.h"
#include "src/gen/arith.h"
#include "src/gen/random_aig.h"

namespace cp::aig {
namespace {

void expectSameFunction(const Aig& a, const Aig& b, int samples = 64) {
  ASSERT_EQ(a.numInputs(), b.numInputs());
  ASSERT_EQ(a.numOutputs(), b.numOutputs());
  Rng rng(123);
  for (int s = 0; s < samples; ++s) {
    std::vector<bool> in(a.numInputs());
    for (auto&& bit : in) bit = rng.flip();
    EXPECT_EQ(a.evaluate(in), b.evaluate(in));
  }
}

TEST(Aiger, AsciiRoundTripAdder) {
  const Aig g = gen::rippleCarryAdder(4);
  std::stringstream ss;
  writeAscii(g, ss);
  const Aig back = readAiger(ss);
  expectSameFunction(g, back);
}

TEST(Aiger, BinaryRoundTripAdder) {
  const Aig g = gen::carryLookaheadAdder(6);
  std::stringstream ss;
  writeBinary(g, ss);
  const Aig back = readAiger(ss);
  expectSameFunction(g, back);
}

TEST(Aiger, RoundTripRandomGraphs) {
  Rng rng(9);
  for (int iter = 0; iter < 10; ++iter) {
    gen::RandomAigOptions opt;
    opt.numInputs = 4 + iter;
    opt.numAnds = 30 + 10 * iter;
    opt.numOutputs = 2;
    const Aig g = gen::randomAig(opt, rng);
    std::stringstream ascii, binary;
    writeAscii(g, ascii);
    writeBinary(g, binary);
    expectSameFunction(g, readAiger(ascii), 32);
    expectSameFunction(g, readAiger(binary), 32);
  }
}

TEST(Aiger, ConstantOutputs) {
  Aig g;
  (void)g.addInput();
  g.addOutput(kFalse);
  g.addOutput(kTrue);
  std::stringstream ss;
  writeAscii(g, ss);
  const Aig back = readAiger(ss);
  EXPECT_EQ(back.evaluate({false})[0], false);
  EXPECT_EQ(back.evaluate({false})[1], true);
}

TEST(Aiger, ComplementedOutputRoundTrip) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  g.addOutput(!g.addAnd(a, b));  // NAND
  std::stringstream ss;
  writeBinary(g, ss);
  expectSameFunction(g, readAiger(ss), 8);
}

TEST(Aiger, RejectsLatches) {
  std::stringstream ss("aag 2 1 1 0 0\n2\n4 2\n");
  EXPECT_THROW((void)readAiger(ss), std::runtime_error);
}

TEST(Aiger, RejectsBadMagic) {
  std::stringstream ss("xyz 0 0 0 0 0\n");
  EXPECT_THROW((void)readAiger(ss), std::runtime_error);
}

TEST(Aiger, RejectsTruncatedHeader) {
  std::stringstream ss("aag 2 1\n");
  EXPECT_THROW((void)readAiger(ss), std::runtime_error);
}

TEST(Aiger, RejectsUseBeforeDefinition) {
  // AND gate references literal 6 (variable 3) which is never defined.
  std::stringstream ss("aag 3 1 0 1 1\n2\n4\n4 2 6\n");
  EXPECT_THROW((void)readAiger(ss), std::runtime_error);
}

TEST(Aiger, RejectsOddInputLiteral) {
  std::stringstream ss("aag 1 1 0 0 0\n3\n");
  EXPECT_THROW((void)readAiger(ss), std::runtime_error);
}

TEST(Aiger, ParsesHandWrittenAscii) {
  // Single AND of two inputs, output complemented (NAND).
  std::stringstream ss("aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n");
  const Aig g = readAiger(ss);
  EXPECT_EQ(g.numInputs(), 2u);
  EXPECT_EQ(g.numAnds(), 1u);
  EXPECT_EQ(g.evaluate({true, true})[0], false);
  EXPECT_EQ(g.evaluate({true, false})[0], true);
}

TEST(Aiger, FileRoundTrip) {
  const Aig g = gen::parityTree(5);
  const std::string path = testing::TempDir() + "/parity.aig";
  writeAigerFile(g, path, /*binary=*/true);
  expectSameFunction(g, readAigerFile(path), 32);
}

}  // namespace
}  // namespace cp::aig
