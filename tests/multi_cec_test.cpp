#include "src/cec/multi_cec.h"

#include <gtest/gtest.h>

#include "src/gen/arith.h"
#include "src/gen/prefix_adders.h"

namespace cp::cec {
namespace {

using aig::Aig;

TEST(MultiCec, AllOutputsEquivalent) {
  const Aig left = gen::rippleCarryAdder(6);
  const Aig right = gen::koggeStoneAdder(6);
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kEquivalent);
  ASSERT_EQ(r.outputs.size(), 7u);
  for (const auto& out : r.outputs) {
    EXPECT_EQ(out.verdict, Verdict::kEquivalent);
    EXPECT_TRUE(out.proofChecked);
    EXPECT_FALSE(out.refutedBySimulation);
  }
  EXPECT_EQ(r.simulationRefuted, 0u);
  EXPECT_EQ(r.satChecked, 7u);
}

TEST(MultiCec, CorruptedOutputsAreLocalized) {
  const Aig left = gen::rippleCarryAdder(6);
  Aig right = gen::brentKungAdder(6);
  right.setOutput(2, !right.output(2));
  right.setOutput(5, !right.output(5));
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  for (std::size_t o = 0; o < r.outputs.size(); ++o) {
    const bool corrupted = o == 2 || o == 5;
    EXPECT_EQ(r.outputs[o].verdict,
              corrupted ? Verdict::kInequivalent : Verdict::kEquivalent)
        << "output " << o;
    if (corrupted) {
      // Verify the counterexample against the real circuits.
      const auto lv = left.evaluate(r.outputs[o].counterexample);
      const auto rv = right.evaluate(r.outputs[o].counterexample);
      EXPECT_NE(lv[o], rv[o]);
    }
  }
  // A complemented output differs on every input: simulation must have
  // caught both without SAT.
  EXPECT_EQ(r.simulationRefuted, 2u);
  EXPECT_EQ(r.satChecked, r.outputs.size() - 2);
}

TEST(MultiCec, SubtleFaultStillCaught) {
  // Fault that agrees on most inputs: carry-out stuck at a near-miss
  // function (carry of width-1 instead of width). Simulation may or may
  // not catch it; the SAT path must.
  const std::uint32_t w = 5;
  const Aig left = gen::rippleCarryAdder(w);
  Aig right;
  {
    // Reimplement the adder but compute carry-out ignoring the top bit.
    std::vector<aig::Edge> a, b;
    for (std::uint32_t i = 0; i < w; ++i) a.push_back(right.addInput());
    for (std::uint32_t i = 0; i < w; ++i) b.push_back(right.addInput());
    aig::Edge carry = aig::kFalse;
    aig::Edge lastCarry = aig::kFalse;
    for (std::uint32_t i = 0; i < w; ++i) {
      const aig::Edge axb = right.addXor(a[i], b[i]);
      right.addOutput(right.addXor(axb, carry));
      lastCarry = carry;
      carry = right.addOr(right.addAnd(a[i], b[i]),
                          right.addAnd(axb, carry));
    }
    right.addOutput(lastCarry);  // wrong: one stage short
  }
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  for (std::size_t o = 0; o < w; ++o) {
    EXPECT_EQ(r.outputs[o].verdict, Verdict::kEquivalent) << o;
  }
  ASSERT_EQ(r.outputs[w].verdict, Verdict::kInequivalent);
  const auto& cex = r.outputs[w].counterexample;
  EXPECT_NE(left.evaluate(cex)[w], right.evaluate(cex)[w]);
}

TEST(MultiCec, StopAtFirstDifferenceSkipsRest) {
  const Aig left = gen::rippleCarryAdder(8);
  Aig right = gen::rippleCarryAdder(8);
  right.setOutput(0, !right.output(0));
  MultiCecOptions options;
  options.stopAtFirstDifference = true;
  const MultiCecResult r = checkOutputs(left, right, options);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  EXPECT_EQ(r.outputs[0].verdict, Verdict::kInequivalent);
  // Remaining outputs were not SAT-checked.
  EXPECT_EQ(r.satChecked, 0u);
  for (std::size_t o = 1; o < r.outputs.size(); ++o) {
    EXPECT_EQ(r.outputs[o].verdict, Verdict::kUndecided);
  }
}

TEST(MultiCec, NonCertifyingModeSkipsProofs) {
  const Aig left = gen::parityChain(6);
  const Aig right = gen::parityTree(6);
  MultiCecOptions options;
  options.certify = false;
  const MultiCecResult r = checkOutputs(left, right, options);
  EXPECT_EQ(r.overall, Verdict::kEquivalent);
  EXPECT_FALSE(r.outputs[0].proofChecked);
}

TEST(MultiCec, RejectsInterfaceMismatch) {
  EXPECT_THROW(
      (void)checkOutputs(gen::rippleCarryAdder(4), gen::rippleCarryAdder(5)),
      std::invalid_argument);
}

}  // namespace
}  // namespace cp::cec
