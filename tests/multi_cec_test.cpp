#include "src/cec/multi_cec.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/base/rng.h"
#include "src/gen/arith.h"
#include "src/gen/prefix_adders.h"
#include "src/rewrite/restructure.h"

namespace cp::cec {
namespace {

using aig::Aig;

TEST(MultiCec, AllOutputsEquivalent) {
  const Aig left = gen::rippleCarryAdder(6);
  const Aig right = gen::koggeStoneAdder(6);
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kEquivalent);
  ASSERT_EQ(r.outputs.size(), 7u);
  for (const auto& out : r.outputs) {
    EXPECT_EQ(out.verdict, Verdict::kEquivalent);
    EXPECT_TRUE(out.proofChecked);
    EXPECT_FALSE(out.refutedBySimulation);
  }
  EXPECT_EQ(r.simulationRefuted, 0u);
  EXPECT_EQ(r.satChecked, 7u);
}

TEST(MultiCec, CorruptedOutputsAreLocalized) {
  const Aig left = gen::rippleCarryAdder(6);
  Aig right = gen::brentKungAdder(6);
  right.setOutput(2, !right.output(2));
  right.setOutput(5, !right.output(5));
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  for (std::size_t o = 0; o < r.outputs.size(); ++o) {
    const bool corrupted = o == 2 || o == 5;
    EXPECT_EQ(r.outputs[o].verdict,
              corrupted ? Verdict::kInequivalent : Verdict::kEquivalent)
        << "output " << o;
    if (corrupted) {
      // Verify the counterexample against the real circuits.
      const auto lv = left.evaluate(r.outputs[o].counterexample);
      const auto rv = right.evaluate(r.outputs[o].counterexample);
      EXPECT_NE(lv[o], rv[o]);
    }
  }
  // A complemented output differs on every input: simulation must have
  // caught both without SAT.
  EXPECT_EQ(r.simulationRefuted, 2u);
  EXPECT_EQ(r.satChecked, r.outputs.size() - 2);
}

TEST(MultiCec, SubtleFaultStillCaught) {
  // Fault that agrees on most inputs: carry-out stuck at a near-miss
  // function (carry of width-1 instead of width). Simulation may or may
  // not catch it; the SAT path must.
  const std::uint32_t w = 5;
  const Aig left = gen::rippleCarryAdder(w);
  Aig right;
  {
    // Reimplement the adder but compute carry-out ignoring the top bit.
    std::vector<aig::Edge> a, b;
    for (std::uint32_t i = 0; i < w; ++i) a.push_back(right.addInput());
    for (std::uint32_t i = 0; i < w; ++i) b.push_back(right.addInput());
    aig::Edge carry = aig::kFalse;
    aig::Edge lastCarry = aig::kFalse;
    for (std::uint32_t i = 0; i < w; ++i) {
      const aig::Edge axb = right.addXor(a[i], b[i]);
      right.addOutput(right.addXor(axb, carry));
      lastCarry = carry;
      carry = right.addOr(right.addAnd(a[i], b[i]),
                          right.addAnd(axb, carry));
    }
    right.addOutput(lastCarry);  // wrong: one stage short
  }
  const MultiCecResult r = checkOutputs(left, right);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  for (std::size_t o = 0; o < w; ++o) {
    EXPECT_EQ(r.outputs[o].verdict, Verdict::kEquivalent) << o;
  }
  ASSERT_EQ(r.outputs[w].verdict, Verdict::kInequivalent);
  const auto& cex = r.outputs[w].counterexample;
  EXPECT_NE(left.evaluate(cex)[w], right.evaluate(cex)[w]);
}

TEST(MultiCec, StopAtFirstDifferenceSkipsRest) {
  const Aig left = gen::rippleCarryAdder(8);
  Aig right = gen::rippleCarryAdder(8);
  right.setOutput(0, !right.output(0));
  MultiCecOptions options;
  options.stopAtFirstDifference = true;
  const MultiCecResult r = checkOutputs(left, right, options);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  EXPECT_EQ(r.outputs[0].verdict, Verdict::kInequivalent);
  // Remaining outputs were not SAT-checked.
  EXPECT_EQ(r.satChecked, 0u);
  for (std::size_t o = 1; o < r.outputs.size(); ++o) {
    EXPECT_EQ(r.outputs[o].verdict, Verdict::kUndecided);
  }
}

TEST(MultiCec, NonCertifyingModeSkipsProofs) {
  const Aig left = gen::parityChain(6);
  const Aig right = gen::parityTree(6);
  MultiCecOptions options;
  options.certify = false;
  const MultiCecResult r = checkOutputs(left, right, options);
  EXPECT_EQ(r.overall, Verdict::kEquivalent);
  EXPECT_FALSE(r.outputs[0].proofChecked);
}

TEST(MultiCec, RejectsInterfaceMismatch) {
  EXPECT_THROW(
      (void)checkOutputs(gen::rippleCarryAdder(4), gen::rippleCarryAdder(5)),
      std::invalid_argument);
}

TEST(MultiCec, MismatchMessageNamesDimensionAndCounts) {
  // Input mismatch: 8 vs 10 inputs.
  try {
    (void)checkOutputs(gen::rippleCarryAdder(4), gen::rippleCarryAdder(5));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("input count mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10"), std::string::npos) << msg;
  }
  // Output mismatch with matching inputs: 1 vs 2 outputs.
  Aig left, right;
  std::vector<aig::Edge> li, ri;
  for (int i = 0; i < 3; ++i) li.push_back(left.addInput());
  for (int i = 0; i < 3; ++i) ri.push_back(right.addInput());
  left.addOutput(left.addAnd(li[0], li[1]));
  right.addOutput(right.addAnd(ri[0], ri[1]));
  right.addOutput(ri[2]);
  try {
    (void)checkOutputs(left, right);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("output count mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2"), std::string::npos) << msg;
  }
}

TEST(MultiCec, RejectsZeroOutputCircuits) {
  Aig left, right;
  (void)left.addInput();
  (void)right.addInput();
  EXPECT_THROW((void)checkOutputs(left, right), std::invalid_argument);
}

TEST(MultiCec, RejectsZeroSimWords) {
  const Aig left = gen::parityChain(4);
  const Aig right = gen::parityTree(4);
  MultiCecOptions options;
  options.simWords = 0;
  EXPECT_THROW((void)checkOutputs(left, right, options),
               std::invalid_argument);
  options.simWords = 8;
  options.sweep.simWords = 0;
  EXPECT_THROW((void)checkOutputs(left, right, options),
               std::invalid_argument);
}

// A pair whose only difference needs SAT: output 1 differs on exactly one
// of 2^16 input patterns (all ones), which 512 random patterns virtually
// never hit. Outputs 0 and 2 are equivalent parity cones with different
// association orders.
std::pair<Aig, Aig> satOnlyDifferencePair() {
  Aig left, right;
  std::vector<aig::Edge> a, b;
  for (int i = 0; i < 16; ++i) a.push_back(left.addInput());
  for (int i = 0; i < 16; ++i) b.push_back(right.addInput());
  // out0: parity, chain vs balanced-tree association.
  aig::Edge chain = a[0];
  for (int i = 1; i < 16; ++i) chain = left.addXor(chain, a[i]);
  left.addOutput(chain);
  std::vector<aig::Edge> layer(b);
  while (layer.size() > 1) {
    std::vector<aig::Edge> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(right.addXor(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  right.addOutput(layer[0]);
  // out1: conjunction of all inputs vs constant false — the needle.
  aig::Edge all = a[0];
  for (int i = 1; i < 16; ++i) all = left.addAnd(all, a[i]);
  left.addOutput(all);
  right.addOutput(aig::kFalse);
  // out2: OR of the first two inputs, two De-Morgan spellings.
  left.addOutput(left.addOr(a[0], a[1]));
  right.addOutput(!right.addAnd(!b[0], !b[1]));
  return {std::move(left), std::move(right)};
}

TEST(MultiCec, StopAtFirstDifferenceOnSatFoundFault) {
  const auto [left, right] = satOnlyDifferencePair();
  MultiCecOptions options;
  options.stopAtFirstDifference = true;
  const MultiCecResult r = checkOutputs(left, right, options);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
  // Simulation must have missed the single-pattern difference, so the
  // stop happens mid-SAT-phase: output 0 checked (equivalent), output 1
  // checked (inequivalent), output 2 left undecided.
  EXPECT_EQ(r.simulationRefuted, 0u);
  ASSERT_EQ(r.outputs.size(), 3u);
  EXPECT_FALSE(r.outputs[1].refutedBySimulation);
  EXPECT_EQ(r.outputs[0].verdict, Verdict::kEquivalent);
  EXPECT_EQ(r.outputs[1].verdict, Verdict::kInequivalent);
  EXPECT_EQ(r.outputs[2].verdict, Verdict::kUndecided);
  // satChecked stops growing at the difference.
  EXPECT_EQ(r.satChecked, 2u);
  // The counterexample is the unique separating pattern: all ones.
  ASSERT_EQ(r.outputs[1].counterexample.size(), 16u);
  for (const bool bit : r.outputs[1].counterexample) EXPECT_TRUE(bit);
  EXPECT_EQ(r.overall, Verdict::kInequivalent);
}

/// Field-by-field equality of everything deterministic (timings excluded).
void expectSameDeterministicResult(const MultiCecResult& a,
                                   const MultiCecResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.simulationRefuted, b.simulationRefuted);
  EXPECT_EQ(a.satChecked, b.satChecked);
  EXPECT_EQ(a.totalConflicts, b.totalConflicts);
  EXPECT_EQ(a.totalProofClauses, b.totalProofClauses);
  EXPECT_EQ(a.totalProofResolutions, b.totalProofResolutions);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    EXPECT_EQ(a.outputs[o].verdict, b.outputs[o].verdict) << "output " << o;
    EXPECT_EQ(a.outputs[o].counterexample, b.outputs[o].counterexample)
        << "output " << o;
    EXPECT_EQ(a.outputs[o].proofChecked, b.outputs[o].proofChecked)
        << "output " << o;
    EXPECT_EQ(a.outputs[o].refutedBySimulation,
              b.outputs[o].refutedBySimulation)
        << "output " << o;
    EXPECT_EQ(a.outputs[o].satConflicts, b.outputs[o].satConflicts)
        << "output " << o;
    EXPECT_EQ(a.outputs[o].proofClauses, b.outputs[o].proofClauses)
        << "output " << o;
    EXPECT_EQ(a.outputs[o].proofResolutions, b.outputs[o].proofResolutions)
        << "output " << o;
  }
}

TEST(MultiCec, ParallelMatchesSequentialOnRestructuredAlu) {
  const Aig left = gen::aluVariantA(4);
  Rng rng(17);
  const Aig right = rewrite::restructure(left, rng);
  MultiCecOptions seq;
  seq.parallel.numThreads = 1;
  MultiCecOptions par = seq;
  par.parallel.numThreads = 4;
  const MultiCecResult rs = checkOutputs(left, right, seq);
  const MultiCecResult rp = checkOutputs(left, right, par);
  EXPECT_EQ(rs.overall, Verdict::kEquivalent);
  for (const auto& out : rs.outputs) EXPECT_TRUE(out.proofChecked);
  expectSameDeterministicResult(rs, rp);
}

TEST(MultiCec, ParallelMatchesSequentialOnCorruptedAdder) {
  const Aig left = gen::rippleCarryAdder(6);
  Aig right = gen::brentKungAdder(6);
  right.setOutput(3, !right.output(3));
  MultiCecOptions seq;
  seq.parallel.numThreads = 1;
  MultiCecOptions par = seq;
  par.parallel.numThreads = 4;
  const MultiCecResult rs = checkOutputs(left, right, seq);
  const MultiCecResult rp = checkOutputs(left, right, par);
  EXPECT_EQ(rs.overall, Verdict::kInequivalent);
  expectSameDeterministicResult(rs, rp);
}

TEST(MultiCec, ParallelStopAtFirstDifferenceIsDeterministic) {
  const auto [left, right] = satOnlyDifferencePair();
  MultiCecOptions seq;
  seq.stopAtFirstDifference = true;
  seq.parallel.numThreads = 1;
  MultiCecOptions par = seq;
  par.parallel.numThreads = 4;
  const MultiCecResult rs = checkOutputs(left, right, seq);
  const MultiCecResult rp = checkOutputs(left, right, par);
  EXPECT_EQ(rs.satChecked, 2u);
  expectSameDeterministicResult(rs, rp);
}

TEST(MultiCec, ZeroThreadsMeansHardwareConcurrency) {
  // numThreads = 0 resolves to the machine's worker count and must still
  // produce the sequential result.
  const Aig left = gen::rippleCarryAdder(4);
  const Aig right = gen::sklanskyAdder(4);
  MultiCecOptions seq;
  seq.parallel.numThreads = 1;
  MultiCecOptions hw = seq;
  hw.parallel.numThreads = 0;
  expectSameDeterministicResult(checkOutputs(left, right, seq),
                                checkOutputs(left, right, hw));
}

TEST(MultiCec, AggregatesMatchPerOutputStats) {
  const Aig left = gen::rippleCarryAdder(5);
  const Aig right = gen::koggeStoneAdder(5);
  MultiCecOptions options;
  options.parallel.numThreads = 2;
  const MultiCecResult r = checkOutputs(left, right, options);
  std::uint64_t conflicts = 0, clauses = 0, resolutions = 0;
  for (const auto& out : r.outputs) {
    conflicts += out.satConflicts;
    clauses += out.proofClauses;
    resolutions += out.proofResolutions;
  }
  EXPECT_EQ(r.totalConflicts, conflicts);
  EXPECT_EQ(r.totalProofClauses, clauses);
  EXPECT_EQ(r.totalProofResolutions, resolutions);
  EXPECT_GT(r.totalProofClauses, 0u);  // certified equivalences have proofs
}

}  // namespace
}  // namespace cp::cec
