// Cross-job lemma cache tests: canonicalization is position-independent,
// the standalone cone prover is sound in both directions, sweeps with a
// shared cache produce hits whose spliced proofs pass the full checker,
// verdicts are identical with the cache on and off, and corrupt entries
// are rejected (poisoned) instead of ever miscertifying.
#include "src/cec/lemma_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/cec/sweeping_cec.h"
#include "src/gen/arith.h"
#include "src/proof/checker.h"
#include "src/proof/proof_log.h"

namespace cp::cec {
namespace {

using aig::Aig;
using aig::Edge;

/// Two structurally different, functionally identical cones inside one
/// graph: r0 = AND chain, r1 = the same function built in another shape.
struct TwoCones {
  Aig graph;
  Edge r0;
  Edge r1;
};

/// (a & b) & c built twice with different association.
TwoCones associativityCones() {
  TwoCones t;
  const Edge a = t.graph.addInput();
  const Edge b = t.graph.addInput();
  const Edge c = t.graph.addInput();
  t.r0 = t.graph.addAnd(t.graph.addAnd(a, b), c);
  t.r1 = t.graph.addAnd(a, t.graph.addAnd(b, c));
  return t;
}

TEST(CanonicalCone, ExtractionIsPositionIndependent) {
  // The same sub-structure planted at two different node offsets must
  // canonicalize to the same blob (that is the whole point of the cache).
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge pad = g.addAnd(a, !b);  // shifts node ids for the second copy
  const Edge x1 = g.addAnd(a, b);
  const Edge y1 = g.addAnd(x1, !a);
  const Edge c = g.addInput();
  const Edge d = g.addInput();
  (void)g.addAnd(pad, c);  // more padding
  const Edge x2 = g.addAnd(c, d);
  const Edge y2 = g.addAnd(x2, !c);

  const CanonicalCone cone1 = extractConePair(g, y1, x1, 256);
  const CanonicalCone cone2 = extractConePair(g, y2, x2, 256);
  ASSERT_TRUE(cone1.valid);
  ASSERT_TRUE(cone2.valid);
  EXPECT_EQ(cone1.blob, cone2.blob);
  EXPECT_EQ(cone1.structHash, cone2.structHash);
  EXPECT_EQ(cone1.simSignature, cone2.simSignature);
  // But the host mappings differ: the cones live at different nodes.
  EXPECT_NE(cone1.toHost, cone2.toHost);
}

TEST(CanonicalCone, DistinctStructuresGetDistinctBlobs) {
  const TwoCones t = associativityCones();
  const CanonicalCone fwd = extractConePair(t.graph, t.r0, t.r1, 256);
  const CanonicalCone swapped = extractConePair(t.graph, t.r1, t.r0, 256);
  ASSERT_TRUE(fwd.valid);
  ASSERT_TRUE(swapped.valid);
  EXPECT_NE(fwd.blob, swapped.blob);  // root order is part of the key
}

TEST(CanonicalCone, RespectsNodeBudget) {
  const TwoCones t = associativityCones();
  EXPECT_FALSE(extractConePair(t.graph, t.r0, t.r1, 3).valid);
  EXPECT_TRUE(extractConePair(t.graph, t.r0, t.r1, 4).valid);
}

TEST(ProveConePair, ProvesEquivalentCones) {
  const TwoCones t = associativityCones();
  const CanonicalCone cone = extractConePair(t.graph, t.r0, t.r1, 256);
  ASSERT_TRUE(cone.valid);
  const ProveResult r = proveConePair(cone, sat::SolverOptions(), -1);
  EXPECT_EQ(r.outcome, ProveOutcome::kProved);
  EXPECT_FALSE(r.proof.steps.empty());
}

TEST(ProveConePair, RefutesInequivalentConesWithWitness) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge andAb = g.addAnd(a, b);
  const Edge orAb = g.addOr(a, b);
  const CanonicalCone cone = extractConePair(g, andAb, orAb, 256);
  ASSERT_TRUE(cone.valid);
  const ProveResult r = proveConePair(cone, sat::SolverOptions(), -1);
  ASSERT_EQ(r.outcome, ProveOutcome::kCounterexample);
  // The witness must distinguish AND from OR: exactly one input true.
  ASSERT_EQ(r.inputValues.size(), cone.numNodes());
  std::uint32_t trues = 0;
  for (std::uint32_t v = 1; v < cone.numNodes(); ++v) {
    if (cone.blob[3 + 2 * (v - 1)] == CanonicalCone::kInputSentinel) {
      trues += r.inputValues[v] ? 1 : 0;
    }
  }
  EXPECT_EQ(trues, 1u);
}

TEST(LemmaCacheOptions, Validation) {
  LemmaCacheOptions bad;
  bad.maxConeNodes = 0;
  EXPECT_FALSE(bad.validate().empty());
  EXPECT_THROW(LemmaCache cache(bad), std::invalid_argument);
  LemmaCacheOptions tiny;
  tiny.maxBytes = 1;
  EXPECT_FALSE(tiny.validate().empty());
  EXPECT_TRUE(LemmaCacheOptions().validate().empty());
}

proof::CheckResult checkSweepProof(const Aig& miter,
                                   const proof::ProofLog& log) {
  proof::CheckOptions options;
  options.axiomValidator = miterAxiomValidator(miter);
  return proof::checkProof(log, options);
}

TEST(LemmaCache, SecondJobHitsAndProofStillChecks) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(8),
                               gen::carryLookaheadAdder(8, 4));
  LemmaCache cache;
  SweepOptions options;
  options.lemmaCache = &cache;

  proof::ProofLog log1;
  const CecResult first = sweepingCheck(miter, options, &log1);
  ASSERT_EQ(first.verdict, Verdict::kEquivalent);
  EXPECT_GT(first.stats.lemmaCacheMisses, 0u);
  EXPECT_GT(cache.numEntries(), 0u);
  const auto check1 = checkSweepProof(miter, log1);
  EXPECT_TRUE(check1.ok) << check1.error;

  // Same workload again, same cache: every cacheable pair must hit, and
  // the spliced proof must still satisfy the unmodified checker.
  proof::ProofLog log2;
  const CecResult second = sweepingCheck(miter, options, &log2);
  ASSERT_EQ(second.verdict, Verdict::kEquivalent);
  EXPECT_GT(second.stats.lemmaCacheHits, 0u);
  EXPECT_GT(second.stats.lemmaCacheSpliced, 0u);
  const auto check2 = checkSweepProof(miter, log2);
  EXPECT_TRUE(check2.ok) << check2.error;

  const LemmaCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(stats.poisoned, 0u);
}

TEST(LemmaCache, VerdictsIdenticalWithCacheOnAndOff) {
  // Equivalent and inequivalent workloads must produce the same verdict
  // with and without a cache, hit or miss.
  const Aig equivalent = buildMiter(gen::rippleCarryAdder(6),
                                    gen::carrySelectAdder(6, 2));
  Aig broken = gen::rippleCarryAdder(6);
  broken.setOutput(0, !broken.output(0));
  const Aig inequivalent = buildMiter(gen::rippleCarryAdder(6), broken);

  LemmaCache cache;
  SweepOptions cached;
  cached.lemmaCache = &cache;
  const SweepOptions plain;

  for (int round = 0; round < 2; ++round) {  // round 2 sees cache hits
    EXPECT_EQ(sweepingCheck(equivalent, cached).verdict,
              sweepingCheck(equivalent, plain).verdict);
    const CecResult cachedInequiv = sweepingCheck(inequivalent, cached);
    EXPECT_EQ(cachedInequiv.verdict, Verdict::kInequivalent);
    EXPECT_EQ(sweepingCheck(inequivalent, plain).verdict,
              Verdict::kInequivalent);
    EXPECT_TRUE(inequivalent.evaluate(cachedInequiv.counterexample).at(0));
  }
}

TEST(LemmaCache, CorruptEntriesAreRejectedNeverMiscertified) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(8),
                               gen::carryLookaheadAdder(8, 4));
  LemmaCache cache;
  SweepOptions options;
  options.lemmaCache = &cache;

  proof::ProofLog warmup;
  ASSERT_EQ(sweepingCheck(miter, options, &warmup).verdict,
            Verdict::kEquivalent);
  ASSERT_GT(cache.numEntries(), 0u);

  // Corrupt every cached proof: point both lemma slots at the constant
  // unit axiom. The splice must fail the subsumption gate, poison the
  // entries, fall back to the solver, and still produce a checkable proof.
  const std::size_t mutated = cache.mutateEntriesForTest(
      [](CachedLemmaProof& proof) { proof.fwd = proof.bwd = 0; });
  ASSERT_GT(mutated, 0u);

  proof::ProofLog log;
  const CecResult result = sweepingCheck(miter, options, &log);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  const auto check = checkSweepProof(miter, log);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(cache.stats().poisoned, 0u);
}

TEST(LemmaCache, TruncatedEntriesAreRejectedToo) {
  const Aig miter = buildMiter(gen::rippleCarryAdder(6),
                               gen::carrySelectAdder(6, 2));
  LemmaCache cache;
  SweepOptions options;
  options.lemmaCache = &cache;
  ASSERT_EQ(sweepingCheck(miter, options).verdict, Verdict::kEquivalent);
  if (cache.numEntries() == 0) GTEST_SKIP() << "no cacheable pairs";

  cache.mutateEntriesForTest([](CachedLemmaProof& proof) {
    proof.steps.clear();  // fwd/bwd now dangle past the step table
  });
  proof::ProofLog log;
  const CecResult result = sweepingCheck(miter, options, &log);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  const auto check = checkSweepProof(miter, log);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(LemmaCache, EvictionKeepsByteBudget) {
  LemmaCacheOptions small;
  small.maxBytes = 4096;
  LemmaCache cache(small);
  SweepOptions options;
  options.lemmaCache = &cache;
  const Aig miter = buildMiter(gen::rippleCarryAdder(10),
                               gen::carryLookaheadAdder(10, 4));
  ASSERT_EQ(sweepingCheck(miter, options).verdict, Verdict::kEquivalent);
  const LemmaCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, small.maxBytes);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(LemmaCache, HitSplicedProofPassesCpfDiskCertifier) {
  // End to end through the finalized Job surface: stream the proof of a
  // cache-hitting run to a CPF container and certify it from disk.
  const Aig miter = buildMiter(gen::rippleCarryAdder(8),
                               gen::carryLookaheadAdder(8, 4));
  LemmaCache cache;
  SweepOptions sweep;
  sweep.lemmaCache = &cache;
  EngineConfig config;
  config.engine = sweep;

  const CertifyReport warm = checkMiter(miter, config);
  ASSERT_EQ(warm.cec.verdict, Verdict::kEquivalent);
  ASSERT_TRUE(warm.proofChecked);

  config.proofPath = ::testing::TempDir() + "/lemma_cache_hit.cpf";
  const CertifyReport hit = checkMiter(miter, config);
  EXPECT_EQ(hit.cec.verdict, Verdict::kEquivalent);
  EXPECT_TRUE(hit.proofChecked);
  EXPECT_GT(hit.cec.stats.lemmaCacheHits, 0u);
}

}  // namespace
}  // namespace cp::cec
