#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/gen/arith.h"
#include "src/gen/random_aig.h"
#include "src/sim/equiv_classes.h"

namespace cp::sim {
namespace {

using aig::Aig;
using aig::Edge;

TEST(Simulator, MatchesEvaluateOnRandomPatterns) {
  Rng rng(1);
  gen::RandomAigOptions opt;
  opt.numInputs = 7;
  opt.numAnds = 120;
  opt.numOutputs = 3;
  const Aig g = gen::randomAig(opt, rng);

  AigSimulator sim(g, 2);
  sim.randomizeInputs(rng);
  sim.simulate();

  for (std::uint32_t p = 0; p < sim.numPatterns(); p += 13) {
    std::vector<bool> in(g.numInputs());
    for (std::uint32_t i = 0; i < g.numInputs(); ++i) {
      in[i] = sim.bit(g.inputNode(i), p);
    }
    const auto expected = g.evaluate(in);
    for (std::uint32_t o = 0; o < g.numOutputs(); ++o) {
      EXPECT_EQ(sim.edgeBit(g.output(o), p), expected[o]);
    }
  }
}

TEST(Simulator, ConstantNodeIsAlwaysZero) {
  Aig g;
  (void)g.addInput();
  Rng rng(2);
  AigSimulator sim(g, 4);
  sim.randomizeInputs(rng);
  sim.simulate();
  for (const std::uint64_t w : sim.values(0)) EXPECT_EQ(w, 0u);
}

TEST(Simulator, SetInputPatternInjectsExactly) {
  const Aig g = gen::rippleCarryAdder(4);
  Rng rng(3);
  AigSimulator sim(g, 1);
  sim.randomizeInputs(rng);
  // a = 5, b = 11 -> sum = 16 (bit 4 set only).
  std::vector<bool> in(8, false);
  in[0] = true; in[2] = true;          // a = 0101
  in[4] = true; in[5] = true; in[7] = true;  // b = 1011
  sim.setInputPattern(17, in);
  sim.simulate();
  const auto expected = g.evaluate(in);
  for (std::uint32_t o = 0; o < g.numOutputs(); ++o) {
    EXPECT_EQ(sim.edgeBit(g.output(o), 17), expected[o]);
  }
}

TEST(Simulator, CanonicalEqualDetectsComplementPairs) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  // addXor's top AND node computes XNOR (the returned edge is
  // complemented); the sum-of-products XNOR's top node computes XOR.
  // The two nodes are function-complementary.
  const Edge viaXor = g.addXor(a, b);
  const Edge viaSop = g.addOr(g.addAnd(a, b), g.addAnd(!a, !b));
  ASSERT_NE(viaXor.node(), viaSop.node());
  g.addOutput(viaXor);
  g.addOutput(viaSop);

  Rng rng(4);
  AigSimulator sim(g, 4);
  sim.randomizeInputs(rng);
  sim.simulate();
  EXPECT_TRUE(sim.canonicalEqual(viaXor.node(), viaSop.node()));
  EXPECT_NE(sim.canonicalPolarity(viaXor.node()),
            sim.canonicalPolarity(viaSop.node()));
}

TEST(Simulator, CanonicalHashAgreesWithCanonicalEqual) {
  Rng rng(5);
  gen::RandomAigOptions opt;
  opt.numInputs = 5;
  opt.numAnds = 60;
  const Aig g = gen::randomAig(opt, rng);
  AigSimulator sim(g, 2);
  sim.randomizeInputs(rng);
  sim.simulate();
  for (std::uint32_t a = 0; a < g.numNodes(); ++a) {
    for (std::uint32_t b = a + 1; b < g.numNodes(); b += 7) {
      if (sim.canonicalEqual(a, b)) {
        EXPECT_EQ(sim.canonicalHash(a), sim.canonicalHash(b));
      }
    }
  }
}

TEST(EquivClasses, GroupsFunctionallyIdenticalNodes) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge n1 = g.addAnd(a, b);
  // A second computation of AND(a, b): (a AND b) AND (a OR b) is
  // structurally distinct but functionally identical.
  const Edge n2 = g.addAnd(n1, g.addOr(a, b));
  g.addOutput(n1);
  g.addOutput(n2);

  Rng rng(6);
  AigSimulator sim(g, 8);
  sim.randomizeInputs(rng);
  sim.simulate();
  EquivClasses classes(sim);
  ASSERT_NE(classes.classOf(n1.node()), EquivClasses::kNoClass);
  EXPECT_EQ(classes.classOf(n1.node()), classes.classOf(n2.node()));
  EXPECT_LE(classes.representative(n2.node()), n1.node());
}

TEST(EquivClasses, RefineSplitsOnNewEvidence) {
  // Two nodes that agree on pattern 0..k but differ somewhere: force
  // agreement first with constant-zero inputs, then inject a
  // distinguishing pattern and refine.
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge andNode = g.addAnd(a, b);
  const Edge orNode = g.addOr(a, b);
  g.addOutput(andNode);
  g.addOutput(orNode);

  AigSimulator sim(g, 1);
  // All-zero inputs: AND and OR both simulate to constant 0.
  sim.simulate();
  EquivClasses classes(sim);
  ASSERT_NE(classes.classOf(andNode.node()), EquivClasses::kNoClass);
  EXPECT_EQ(classes.classOf(andNode.node()), classes.classOf(orNode.node()));

  // Distinguish: a=1, b=0 -> AND=0, OR=1.
  sim.setInputPattern(0, {true, false});
  sim.simulate();
  classes.refine(sim);
  const auto ca = classes.classOf(andNode.node());
  const auto co = classes.classOf(orNode.node());
  EXPECT_TRUE(ca == EquivClasses::kNoClass || ca != co);
}

TEST(EquivClasses, RemoveDissolvesPairs) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge n1 = g.addAnd(a, b);
  const Edge n2 = g.addAnd(n1, g.addOr(a, b));
  g.addOutput(n1);
  g.addOutput(n2);
  Rng rng(8);
  AigSimulator sim(g, 8);
  sim.randomizeInputs(rng);
  sim.simulate();
  EquivClasses classes(sim);
  ASSERT_NE(classes.classOf(n1.node()), EquivClasses::kNoClass);
  classes.remove(n2.node());
  EXPECT_EQ(classes.classOf(n2.node()), EquivClasses::kNoClass);
  // Partner became a singleton and dissolved too.
  EXPECT_EQ(classes.classOf(n1.node()), EquivClasses::kNoClass);
}

TEST(EquivClasses, TwoAdderVariantsShareManyCandidates) {
  // Two structurally different adders over shared inputs: their internal
  // carry/sum nodes are pairwise function-equal, so candidate classes must
  // be plentiful.
  const Aig ripple = gen::rippleCarryAdder(4);
  const Aig select = gen::carrySelectAdder(4, 2);
  Aig g;
  std::vector<Edge> ins;
  for (std::uint32_t i = 0; i < ripple.numInputs(); ++i) {
    ins.push_back(g.addInput());
  }
  (void)g.append(ripple, ins);
  (void)g.append(select, ins);
  Rng rng(10);
  AigSimulator sim(g, 8);
  sim.randomizeInputs(rng);
  sim.simulate();
  EquivClasses classes(sim);
  EXPECT_GE(classes.numClasses(), 2u);
  EXPECT_GE(classes.numCandidateNodes(), 4u);
}

}  // namespace
}  // namespace cp::sim
