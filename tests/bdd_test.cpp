#include "src/bdd/bdd.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cec/bdd_cec.h"
#include "src/gen/arith.h"
#include "src/gen/prefix_adders.h"
#include "src/gen/random_aig.h"

namespace cp::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  BddManager m;
  EXPECT_EQ(m.numNodes(), 2u);
  const BddRef x = m.var(0);
  EXPECT_NE(x, kFalse);
  EXPECT_NE(x, kTrue);
  EXPECT_EQ(m.var(0), x);  // canonical
  EXPECT_TRUE(m.evaluate(x, {true}));
  EXPECT_FALSE(m.evaluate(x, {false}));
}

TEST(Bdd, BasicOperatorsTruthTables) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef andAB = m.bddAnd(a, b);
  const BddRef orAB = m.bddOr(a, b);
  const BddRef xorAB = m.bddXor(a, b);
  const BddRef notA = m.bddNot(a);
  for (int bits = 0; bits < 4; ++bits) {
    const bool va = bits & 1, vb = bits & 2;
    const std::vector<bool> in = {va, vb};
    EXPECT_EQ(m.evaluate(andAB, in), va && vb);
    EXPECT_EQ(m.evaluate(orAB, in), va || vb);
    EXPECT_EQ(m.evaluate(xorAB, in), va != vb);
    EXPECT_EQ(m.evaluate(notA, in), !va);
  }
}

TEST(Bdd, CanonicityMergesEqualFunctions) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  // De Morgan: ~(a & b) == ~a | ~b.
  EXPECT_EQ(m.bddNot(m.bddAnd(a, b)), m.bddOr(m.bddNot(a), m.bddNot(b)));
  // Double negation.
  EXPECT_EQ(m.bddNot(m.bddNot(a)), a);
  // x ^ x == 0.
  EXPECT_EQ(m.bddXor(b, b), kFalse);
  // ite(a, b, b) == b.
  EXPECT_EQ(m.ite(a, b, b), b);
}

TEST(Bdd, SatCountAndAnySat) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef c = m.var(2);
  const BddRef f = m.bddOr(m.bddAnd(a, b), c);
  // |ab + c| over 3 vars: ab=2 assignments, c=4, overlap ab*c=1 -> 5.
  EXPECT_DOUBLE_EQ(m.satCount(f, 3), 5.0);
  const auto witness = m.anySat(f, 3);
  EXPECT_TRUE(m.evaluate(f, witness));
}

TEST(Bdd, MatchesAigEvaluationOnRandomCircuits) {
  Rng rng(91);
  for (int round = 0; round < 6; ++round) {
    gen::RandomAigOptions opt;
    opt.numInputs = 7;
    opt.numAnds = 70;
    opt.numOutputs = 3;
    const aig::Aig g = gen::randomAig(opt, rng);

    BddManager m;
    std::vector<BddRef> node(g.numNodes(), kFalse);
    for (std::uint32_t i = 0; i < g.numInputs(); ++i) {
      node[g.inputNode(i)] = m.var(i);
    }
    for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
      if (!g.isAnd(n)) continue;
      const auto a = g.fanin0(n);
      const auto b = g.fanin1(n);
      node[n] = m.bddAnd(
          a.complemented() ? m.bddNot(node[a.node()]) : node[a.node()],
          b.complemented() ? m.bddNot(node[b.node()]) : node[b.node()]);
    }
    for (int bits = 0; bits < 128; ++bits) {
      std::vector<bool> in(7);
      for (int i = 0; i < 7; ++i) in[i] = (bits >> i) & 1;
      const auto expected = g.evaluate(in);
      for (std::uint32_t o = 0; o < g.numOutputs(); ++o) {
        const auto e = g.output(o);
        const bool value = m.evaluate(node[e.node()], in) != e.complemented();
        ASSERT_EQ(value, expected[o]);
      }
    }
  }
}

TEST(Bdd, NodeLimitThrows) {
  BddManager m(/*nodeLimit=*/64);
  // A multiplier output needs far more than 64 nodes.
  EXPECT_THROW(
      {
        BddRef acc = kFalse;
        for (std::uint32_t i = 0; i < 16; ++i) {
          acc = m.bddXor(acc, m.bddAnd(m.var(2 * i), m.var(2 * i + 1)));
        }
      },
      BddLimitExceeded);
}

}  // namespace
}  // namespace cp::bdd

namespace cp::cec {
namespace {

TEST(BddCec, ProvesAdderFamiliesEquivalent) {
  const BddCecResult r =
      bddCheck(gen::rippleCarryAdder(16), gen::koggeStoneAdder(16));
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(r.bddNodes, 2u);
}

TEST(BddCec, FindsCounterexamples) {
  aig::Aig broken = gen::rippleCarryAdder(8);
  broken.setOutput(4, !broken.output(4));
  const aig::Aig good = gen::rippleCarryAdder(8);
  const BddCecResult r = bddCheck(good, broken);
  ASSERT_EQ(r.verdict, Verdict::kInequivalent);
  const auto lv = good.evaluate(r.counterexample);
  const auto rv = broken.evaluate(r.counterexample);
  EXPECT_NE(lv, rv);
}

TEST(BddCec, MultiplierBlowsUpGracefully) {
  BddCecOptions options;
  options.nodeLimit = 5000;  // far too small for a 12-bit multiplier
  const BddCecResult r = bddCheck(gen::arrayMultiplier(12),
                                  gen::wallaceMultiplier(12), options);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(BddCec, AgreesWithParityAndComparator) {
  EXPECT_EQ(bddCheck(gen::parityChain(16), gen::parityTree(16)).verdict,
            Verdict::kEquivalent);
  EXPECT_EQ(bddCheck(gen::rippleComparator(12), gen::treeComparator(12))
                .verdict,
            Verdict::kEquivalent);
}

TEST(BddCec, RejectsInterfaceMismatch) {
  EXPECT_THROW(
      (void)bddCheck(gen::rippleCarryAdder(4), gen::rippleCarryAdder(5)),
      std::invalid_argument);
}

}  // namespace
}  // namespace cp::cec
