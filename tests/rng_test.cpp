#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next64() == b.next64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next64();
  a.next64();
  a.reseed(7);
  EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) heads += rng.flip();
  EXPECT_GT(heads, trials / 2 - 500);
  EXPECT_LT(heads, trials / 2 + 500);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(1, 4);
  EXPECT_GT(hits, trials / 4 - 400);
  EXPECT_LT(hits, trials / 4 + 400);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) seen.insert(rng.next64());
  EXPECT_GT(seen.size(), 8u);  // not stuck
}

}  // namespace
}  // namespace cp
