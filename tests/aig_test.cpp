#include "src/aig/aig.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/gen/random_aig.h"

namespace cp::aig {
namespace {

TEST(Edge, PackingRoundTrips) {
  const Edge e = Edge::make(123, true);
  EXPECT_EQ(e.node(), 123u);
  EXPECT_TRUE(e.complemented());
  EXPECT_EQ((!e).node(), 123u);
  EXPECT_FALSE((!e).complemented());
  EXPECT_EQ(e ^ true, !e);
  EXPECT_EQ(e ^ false, e);
  EXPECT_EQ(!!e, e);
}

TEST(Edge, ConstantsAreNodeZero) {
  EXPECT_EQ(kFalse.node(), 0u);
  EXPECT_FALSE(kFalse.complemented());
  EXPECT_EQ(kTrue, !kFalse);
}

TEST(Aig, FreshGraphHasOnlyConstant) {
  Aig g;
  EXPECT_EQ(g.numNodes(), 1u);
  EXPECT_EQ(g.numInputs(), 0u);
  EXPECT_EQ(g.numAnds(), 0u);
  EXPECT_TRUE(g.isConst(0));
}

TEST(Aig, InputsAreRegisteredInOrder) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  EXPECT_TRUE(g.isInput(a.node()));
  EXPECT_EQ(g.inputIndex(a.node()), 0u);
  EXPECT_EQ(g.inputIndex(b.node()), 1u);
  EXPECT_EQ(g.inputEdge(1), b);
}

TEST(Aig, ConstantFolding) {
  Aig g;
  const Edge x = g.addInput();
  EXPECT_EQ(g.addAnd(x, kFalse), kFalse);
  EXPECT_EQ(g.addAnd(kFalse, x), kFalse);
  EXPECT_EQ(g.addAnd(x, kTrue), x);
  EXPECT_EQ(g.addAnd(kTrue, x), x);
  EXPECT_EQ(g.addAnd(x, x), x);
  EXPECT_EQ(g.addAnd(x, !x), kFalse);
  EXPECT_EQ(g.addAnd(!x, x), kFalse);
  EXPECT_EQ(g.numAnds(), 0u);  // no nodes created
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Edge x = g.addInput();
  const Edge y = g.addInput();
  const Edge n1 = g.addAnd(x, y);
  const Edge n2 = g.addAnd(y, x);  // commuted
  const Edge n3 = g.addAnd(!x, y);
  EXPECT_EQ(n1, n2);
  EXPECT_NE(n1, n3);
  EXPECT_EQ(g.numAnds(), 2u);
}

TEST(Aig, ClassifyAndMatchesAddAnd) {
  Aig g;
  const Edge x = g.addInput();
  const Edge y = g.addInput();
  EXPECT_EQ(g.classifyAnd(x, kFalse), AndCase::kConstFalse);
  EXPECT_EQ(g.classifyAnd(x, !x), AndCase::kConstFalse);
  EXPECT_EQ(g.classifyAnd(kTrue, y), AndCase::kConstLeft);
  EXPECT_EQ(g.classifyAnd(y, y), AndCase::kIdentical);
  EXPECT_EQ(g.classifyAnd(x, y), AndCase::kNewNode);
  (void)g.addAnd(x, y);
  EXPECT_EQ(g.classifyAnd(y, x), AndCase::kStrashHit);
}

TEST(Aig, TopologicalInvariant) {
  Rng rng(3);
  gen::RandomAigOptions opt;
  opt.numInputs = 6;
  opt.numAnds = 200;
  const Aig g = gen::randomAig(opt, rng);
  for (std::uint32_t n = 0; n < g.numNodes(); ++n) {
    if (!g.isAnd(n)) continue;
    EXPECT_LT(g.fanin0(n).node(), n);
    EXPECT_LT(g.fanin1(n).node(), n);
  }
}

TEST(Aig, EvaluateBasicGates) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  g.addOutput(g.addAnd(a, b));
  g.addOutput(g.addOr(a, b));
  g.addOutput(g.addXor(a, b));
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      const auto out = g.evaluate({va, vb});
      EXPECT_EQ(out[0], va && vb);
      EXPECT_EQ(out[1], va || vb);
      EXPECT_EQ(out[2], va != vb);
    }
  }
}

TEST(Aig, EvaluateMux) {
  Aig g;
  const Edge s = g.addInput();
  const Edge t = g.addInput();
  const Edge f = g.addInput();
  g.addOutput(g.addMux(s, t, f));
  for (int bits = 0; bits < 8; ++bits) {
    const bool vs = bits & 1, vt = bits & 2, vf = bits & 4;
    EXPECT_EQ(g.evaluate({vs, vt, vf})[0], vs ? vt : vf);
  }
}

TEST(Aig, EvaluateRejectsWrongArity) {
  Aig g;
  (void)g.addInput();
  EXPECT_THROW((void)g.evaluate({}), std::invalid_argument);
  EXPECT_THROW((void)g.evaluate({true, false}), std::invalid_argument);
}

TEST(Aig, LevelsAndDepth) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge c = g.addInput();
  const Edge ab = g.addAnd(a, b);
  const Edge abc = g.addAnd(ab, c);
  g.addOutput(abc);
  const auto level = g.levels();
  EXPECT_EQ(level[a.node()], 0u);
  EXPECT_EQ(level[ab.node()], 1u);
  EXPECT_EQ(level[abc.node()], 2u);
  EXPECT_EQ(g.depth(), 2u);
}

TEST(Aig, ConeAndSupport) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge c = g.addInput();
  const Edge ab = g.addAnd(a, b);
  (void)g.addAnd(ab, c);  // dangling
  const auto cone = g.coneOf({ab});
  // Cone contains a, b, ab but not c.
  EXPECT_EQ(cone.size(), 3u);
  const auto support = g.supportOf({ab});
  EXPECT_EQ(support.size(), 2u);
}

TEST(Aig, CompactedDropsDanglingNodes) {
  Aig g;
  const Edge a = g.addInput();
  const Edge b = g.addInput();
  const Edge keep = g.addAnd(a, b);
  (void)g.addAnd(a, !b);  // dangling
  g.addOutput(!keep);
  const Aig c = g.compacted();
  EXPECT_EQ(c.numAnds(), 1u);
  EXPECT_EQ(c.numInputs(), 2u);
  // Function preserved.
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<bool> in = {(bits & 1) != 0, (bits & 2) != 0};
    EXPECT_EQ(g.evaluate(in), c.evaluate(in));
  }
}

TEST(Aig, CompactedPreservesUnusedInputs) {
  Aig g;
  (void)g.addInput();
  const Edge b = g.addInput();
  g.addOutput(b);
  const Aig c = g.compacted();
  EXPECT_EQ(c.numInputs(), 2u);
  EXPECT_EQ(c.evaluate({false, true})[0], true);
  EXPECT_EQ(c.evaluate({true, false})[0], false);
}

TEST(Aig, AppendComposesFunctions) {
  // inner: XOR of two inputs; outer feeds (a AND b, a OR b) into it.
  Aig inner;
  const Edge x = inner.addInput();
  const Edge y = inner.addInput();
  inner.addOutput(inner.addXor(x, y));

  Aig outer;
  const Edge a = outer.addInput();
  const Edge b = outer.addInput();
  const auto outs =
      outer.append(inner, {outer.addAnd(a, b), outer.addOr(a, b)});
  ASSERT_EQ(outs.size(), 1u);
  outer.addOutput(outs[0]);
  for (int bits = 0; bits < 4; ++bits) {
    const bool va = bits & 1, vb = bits & 2;
    EXPECT_EQ(outer.evaluate({va, vb})[0], (va && vb) != (va || vb));
  }
}

TEST(Aig, AppendRejectsWrongMapSize) {
  Aig inner;
  (void)inner.addInput();
  Aig outer;
  EXPECT_THROW((void)outer.append(inner, {}), std::invalid_argument);
}

TEST(Aig, RandomGraphEvaluateMatchesCompacted) {
  Rng rng(77);
  gen::RandomAigOptions opt;
  opt.numInputs = 5;
  opt.numAnds = 80;
  opt.numOutputs = 3;
  const Aig g = gen::randomAig(opt, rng);
  const Aig c = g.compacted();
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (bits >> i) & 1;
    EXPECT_EQ(g.evaluate(in), c.evaluate(in));
  }
}

}  // namespace
}  // namespace cp::aig
