#include "src/proof/compress.h"

#include <gtest/gtest.h>

#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/cec/sweeping_cec.h"
#include "src/gen/arith.h"
#include "src/proof/checker.h"
#include "src/proof/trim.h"
#include "src/sat/solver.h"

namespace cp::proof {
namespace {

using sat::Lit;

Lit pos(sat::Var v) { return Lit::make(v, false); }
Lit neg(sat::Var v) { return Lit::make(v, true); }

TEST(Compress, FusesLinearChain) {
  // (a)(~a|b)(~b|c)(~c): the two intermediates are single-base-use.
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  const ClauseId bc = log.addAxiom(std::array<Lit, 2>{neg(1), pos(2)});
  const ClauseId nc = log.addAxiom(std::array<Lit, 1>{neg(2)});
  const ClauseId b =
      log.addDerived(std::array<Lit, 1>{pos(1)}, std::array<ClauseId, 2>{a, ab});
  const ClauseId c =
      log.addDerived(std::array<Lit, 1>{pos(2)}, std::array<ClauseId, 2>{b, bc});
  const ClauseId empty =
      log.addDerived(std::span<const Lit>{}, std::array<ClauseId, 2>{c, nc});
  log.setRoot(empty);

  const CompressedProof compressed = compressProof(log);
  EXPECT_EQ(compressed.stats.fused, 2u);
  // 4 axioms + 1 derived (the root with the fully fused chain).
  EXPECT_EQ(compressed.log.numClauses(), 5u);
  EXPECT_EQ(compressed.log.chain(compressed.log.root()).size(), 4u);
  // Same number of resolutions, fewer clauses.
  EXPECT_EQ(compressed.log.numResolutions(), log.numResolutions());
  const auto check = checkProof(compressed.log);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Compress, KeepsMultiUseClauses) {
  // A derived clause used twice must remain recorded.
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  const ClauseId bOnce =
      log.addDerived(std::array<Lit, 1>{pos(1)}, std::array<ClauseId, 2>{a, ab});
  const ClauseId bc = log.addAxiom(std::array<Lit, 2>{neg(1), pos(2)});
  const ClauseId bd = log.addAxiom(std::array<Lit, 2>{neg(1), pos(3)});
  const ClauseId c = log.addDerived(std::array<Lit, 1>{pos(2)},
                                    std::array<ClauseId, 2>{bOnce, bc});
  const ClauseId d = log.addDerived(std::array<Lit, 1>{pos(3)},
                                    std::array<ClauseId, 2>{bOnce, bd});
  const ClauseId ncd = log.addAxiom(std::array<Lit, 2>{neg(2), neg(3)});
  const ClauseId nd = log.addDerived(std::array<Lit, 1>{neg(3)},
                                     std::array<ClauseId, 2>{c, ncd});
  const ClauseId empty =
      log.addDerived(std::span<const Lit>{}, std::array<ClauseId, 2>{d, nd});
  log.setRoot(empty);

  const CompressedProof compressed = compressProof(log);
  const auto check = checkProof(compressed.log);
  EXPECT_TRUE(check.ok) << check.error;
  // bOnce is used twice (both as base) so it cannot be fused.
  EXPECT_LE(compressed.stats.fused, 3u);
  EXPECT_GE(compressed.log.numDerived(), 3u);
}

TEST(Compress, RequiresRoot) {
  ProofLog log;
  (void)log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW((void)compressProof(log), std::invalid_argument);
}

TEST(Compress, SolverProofStaysValid) {
  ProofLog log;
  sat::Solver s(&log);
  // Pigeonhole 5/4 gives a non-trivial proof with learned clauses.
  constexpr int P = 5, H = 4;
  sat::Var p[P][H];
  for (auto& row : p) {
    for (auto& x : row) x = s.newVar();
  }
  for (int i = 0; i < P; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < H; ++j) clause.push_back(pos(p[i][j]));
    ASSERT_TRUE(s.addClause(clause));
  }
  for (int j = 0; j < H; ++j) {
    for (int i1 = 0; i1 < P; ++i1) {
      for (int i2 = i1 + 1; i2 < P; ++i2) {
        ASSERT_TRUE(s.addClause({neg(p[i1][j]), neg(p[i2][j])}));
      }
    }
  }
  ASSERT_EQ(s.solve(), sat::LBool::kFalse);

  const TrimmedProof trimmed = trimProof(log);
  const CompressedProof compressed = compressProof(trimmed.log);
  EXPECT_LE(compressed.log.numClauses(), trimmed.log.numClauses());
  EXPECT_EQ(compressed.log.numResolutions(), trimmed.log.numResolutions());
  const auto check = checkProof(compressed.log);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Compress, CecProofShrinksAndStaysValid) {
  const aig::Aig miter = cec::buildMiter(gen::rippleCarryAdder(8),
                                         gen::carryLookaheadAdder(8, 4));
  ProofLog log;
  const auto result = cec::sweepingCheck(miter, cec::SweepOptions(), &log);
  ASSERT_EQ(result.verdict, cec::Verdict::kEquivalent);

  const TrimmedProof trimmed = trimProof(log);
  const CompressedProof compressed = compressProof(trimmed.log);
  EXPECT_GT(compressed.stats.fused, 0u);
  EXPECT_LT(compressed.log.numClauses(), trimmed.log.numClauses());

  CheckOptions options;
  options.axiomValidator = cec::miterAxiomValidator(miter);
  const auto check = checkProof(compressed.log, options);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Compress, IdempotentOnSecondPass) {
  const aig::Aig miter =
      cec::buildMiter(gen::parityChain(8), gen::parityTree(8));
  ProofLog log;
  const auto result = cec::sweepingCheck(miter, cec::SweepOptions(), &log);
  ASSERT_EQ(result.verdict, cec::Verdict::kEquivalent);
  const CompressedProof once = compressProof(trimProof(log).log);
  const CompressedProof twice = compressProof(once.log);
  EXPECT_EQ(twice.stats.fused, 0u);
  EXPECT_EQ(twice.log.numClauses(), once.log.numClauses());
}

}  // namespace
}  // namespace cp::proof
