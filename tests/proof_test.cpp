// Tests of the proof data structures independent of the solver: the log
// API, the checker's rejection behaviour on corrupted proofs, trimming,
// and TRACECHECK serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/proof/checker.h"
#include "src/proof/proof_log.h"
#include "src/proof/tracecheck.h"
#include "src/proof/trim.h"

namespace cp::proof {
namespace {

using sat::Lit;

Lit pos(sat::Var v) { return Lit::make(v, false); }
Lit neg(sat::Var v) { return Lit::make(v, true); }

/// (a), (~a | b), (~b) |- (): the minimal three-axiom refutation.
ProofLog tinyRefutation() {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  const ClauseId nb = log.addAxiom(std::array<Lit, 1>{neg(1)});
  const ClauseId b =
      log.addDerived(std::array<Lit, 1>{pos(1)}, std::array<ClauseId, 2>{a, ab});
  const ClauseId empty =
      log.addDerived(std::span<const Lit>{}, std::array<ClauseId, 2>{b, nb});
  log.setRoot(empty);
  return log;
}

TEST(ProofLog, BasicAccessors) {
  const ProofLog log = tinyRefutation();
  EXPECT_EQ(log.numClauses(), 5u);
  EXPECT_EQ(log.numAxioms(), 3u);
  EXPECT_EQ(log.numDerived(), 2u);
  EXPECT_EQ(log.numResolutions(), 2u);
  EXPECT_TRUE(log.isAxiom(1));
  EXPECT_FALSE(log.isAxiom(4));
  EXPECT_EQ(log.lits(1).size(), 1u);
  EXPECT_EQ(log.chain(4).size(), 2u);
  EXPECT_TRUE(log.hasRoot());
}

TEST(ProofLog, RejectsForwardChainReference) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW((void)log.addDerived(std::array<Lit, 1>{pos(1)},
                                    std::array<ClauseId, 2>{a, 99}),
               std::invalid_argument);
}

TEST(ProofLog, RejectsEmptyChain) {
  ProofLog log;
  EXPECT_THROW(
      (void)log.addDerived(std::array<Lit, 1>{pos(0)}, std::span<const ClauseId>{}),
      std::invalid_argument);
}

TEST(ProofLog, RejectsNonEmptyRoot) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW(log.setRoot(a), std::invalid_argument);
}

TEST(Checker, AcceptsValidRefutation) {
  const ProofLog log = tinyRefutation();
  const auto result = checkProof(log);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.axiomsChecked, 3u);
  EXPECT_EQ(result.derivedChecked, 2u);
  EXPECT_EQ(result.resolutions, 2u);
}

TEST(Checker, RequiresRootByDefault) {
  ProofLog log;
  (void)log.addAxiom(std::array<Lit, 1>{pos(0)});
  const auto result = checkProof(log);
  EXPECT_FALSE(result.ok);
  CheckOptions relaxed;
  relaxed.requireRoot = false;
  EXPECT_TRUE(checkProof(log, relaxed).ok);
}

TEST(Checker, RejectsWrongDerivedLiterals) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  // Chain yields (b) but we record (~b).
  (void)log.addDerived(std::array<Lit, 1>{neg(1)},
                       std::array<ClauseId, 2>{a, ab});
  CheckOptions options;
  options.requireRoot = false;
  const auto result = checkProof(log, options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failedClause, 3u);
}

TEST(Checker, RejectsNoPivotStep) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId b = log.addAxiom(std::array<Lit, 1>{pos(1)});
  (void)log.addDerived(std::array<Lit, 2>{pos(0), pos(1)},
                       std::array<ClauseId, 2>{a, b});
  CheckOptions options;
  options.requireRoot = false;
  const auto result = checkProof(log, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no pivot"), std::string::npos);
}

TEST(Checker, RejectsDoublePivotStep) {
  ProofLog log;
  const ClauseId c1 = log.addAxiom(std::array<Lit, 2>{pos(0), pos(1)});
  const ClauseId c2 = log.addAxiom(std::array<Lit, 2>{neg(0), neg(1)});
  (void)log.addDerived(std::span<const Lit>{},
                       std::array<ClauseId, 2>{c1, c2});
  CheckOptions options;
  options.requireRoot = false;
  const auto result = checkProof(log, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("more than one pivot"), std::string::npos);
}

TEST(Checker, RejectsSubsetMismatch) {
  // Resolvent (b) recorded as (b | c): supersets are not accepted.
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId ab = log.addAxiom(std::array<Lit, 2>{neg(0), pos(1)});
  (void)log.addDerived(std::array<Lit, 2>{pos(1), pos(2)},
                       std::array<ClauseId, 2>{a, ab});
  CheckOptions options;
  options.requireRoot = false;
  EXPECT_FALSE(checkProof(log, options).ok);
}

TEST(Checker, AxiomValidatorGatesAxioms) {
  const ProofLog log = tinyRefutation();
  CheckOptions options;
  options.axiomValidator = [](std::span<const Lit> lits) {
    return lits.size() <= 1;  // reject the binary axiom
  };
  const auto result = checkProof(log, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("axiom rejected"), std::string::npos);
}

TEST(Checker, OnlyNeededSkipsGarbage) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId na = log.addAxiom(std::array<Lit, 1>{neg(0)});
  // A bogus derived clause NOT on the root's path.
  const ClauseId junk = log.addDerived(std::array<Lit, 1>{pos(5)},
                                       std::array<ClauseId, 1>{a});
  (void)junk;
  const ClauseId empty = log.addDerived(std::span<const Lit>{},
                                        std::array<ClauseId, 2>{a, na});
  log.setRoot(empty);

  CheckOptions full;
  EXPECT_FALSE(checkProof(log, full).ok);  // junk copy mismatch detected

  CheckOptions needed;
  needed.onlyNeeded = true;
  EXPECT_TRUE(checkProof(log, needed).ok);  // junk not on the root path
}

TEST(Trim, DropsUnneededClauses) {
  ProofLog log;
  const ClauseId a = log.addAxiom(std::array<Lit, 1>{pos(0)});
  const ClauseId na = log.addAxiom(std::array<Lit, 1>{neg(0)});
  (void)log.addAxiom(std::array<Lit, 1>{pos(7)});  // unused axiom
  const ClauseId empty = log.addDerived(std::span<const Lit>{},
                                        std::array<ClauseId, 2>{a, na});
  log.setRoot(empty);

  const auto trimmed = trimProof(log);
  EXPECT_EQ(trimmed.log.numClauses(), 3u);
  EXPECT_EQ(trimmed.stats.clausesBefore, 4u);
  EXPECT_EQ(trimmed.stats.clausesAfter, 3u);
  EXPECT_TRUE(checkProof(trimmed.log).ok);
  EXPECT_EQ(trimmed.oldToNew[3], kNoClause);  // the unused axiom
}

TEST(Trim, RequiresRoot) {
  ProofLog log;
  (void)log.addAxiom(std::array<Lit, 1>{pos(0)});
  EXPECT_THROW((void)trimProof(log), std::invalid_argument);
}

TEST(Tracecheck, RoundTripPreservesEverything) {
  const ProofLog log = tinyRefutation();
  std::stringstream ss;
  writeTracecheck(log, ss);
  const ProofLog back = readTracecheck(ss);
  EXPECT_EQ(back.numClauses(), log.numClauses());
  EXPECT_EQ(back.numAxioms(), log.numAxioms());
  EXPECT_TRUE(back.hasRoot());
  EXPECT_TRUE(checkProof(back).ok);
}

TEST(Tracecheck, RootIsLastLine) {
  const ProofLog log = tinyRefutation();
  std::stringstream ss;
  writeTracecheck(log, ss);
  std::string lastLine, line;
  while (std::getline(ss, line)) {
    if (!line.empty()) lastLine = line;
  }
  // Root line: "<id> 0 <chain> 0" -- starts with the root id followed by 0.
  std::stringstream parse(lastLine);
  long long id = 0, zero = -1;
  parse >> id >> zero;
  EXPECT_EQ(static_cast<ClauseId>(id), log.root());
  EXPECT_EQ(zero, 0);
}

TEST(Tracecheck, ParsesSparseIds) {
  std::stringstream ss("10 1 0 0\n20 -1 0 0\n30 0 10 20 0\n");
  const ProofLog log = readTracecheck(ss);
  EXPECT_EQ(log.numClauses(), 3u);
  EXPECT_TRUE(log.hasRoot());
  EXPECT_TRUE(checkProof(log).ok);
}

TEST(Tracecheck, RejectsUndefinedAntecedent) {
  std::stringstream ss("1 1 0 0\n2 0 1 99 0\n");
  EXPECT_THROW((void)readTracecheck(ss), std::runtime_error);
}

TEST(Tracecheck, RejectsDuplicateId) {
  std::stringstream ss("1 1 0 0\n1 -1 0 0\n");
  EXPECT_THROW((void)readTracecheck(ss), std::runtime_error);
}

TEST(Tracecheck, RejectsTruncatedLine) {
  std::stringstream ss("1 1 0");
  EXPECT_THROW((void)readTracecheck(ss), std::runtime_error);
}

TEST(Tracecheck, RejectsLiteralBeyondVariableBound) {
  // A foreign trace can carry variables wider than sat::Lit packs; a
  // silent narrowing cast would alias them onto small variables. The
  // error names the offending token.
  const long long tooBig = static_cast<long long>(sat::kMaxVar) + 2;
  std::stringstream ss("1 " + std::to_string(-tooBig) + " 0 0\n");
  try {
    (void)readTracecheck(ss);
    FAIL() << "oversized literal accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(-tooBig)),
              std::string::npos)
        << e.what();
  }
  // The largest representable variable is still accepted.
  std::stringstream ok("1 " + std::to_string(tooBig - 1) + " 0 0\n");
  const ProofLog log = readTracecheck(ok);
  EXPECT_EQ(log.lits(1)[0].var(), sat::kMaxVar);
}

}  // namespace
}  // namespace cp::proof
