// Correctness of the parallel-prefix adders and the carry-save multiplier,
// plus cross-family certified equivalence.
#include "src/gen/prefix_adders.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cec/certify.h"
#include "src/cec/miter.h"
#include "src/gen/arith.h"

namespace cp::gen {
namespace {

using aig::Aig;

std::vector<bool> toBits(std::uint64_t value, std::uint32_t width) {
  std::vector<bool> bits(width);
  for (std::uint32_t i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

std::uint64_t fromBits(const std::vector<bool>& bits, std::size_t offset,
                       std::size_t count) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value |= static_cast<std::uint64_t>(bits[offset + i]) << i;
  }
  return value;
}

struct PrefixCase {
  const char* name;
  Aig (*build)(std::uint32_t);
  std::uint32_t width;
};

class PrefixAdderCorrectness : public testing::TestWithParam<PrefixCase> {};

TEST_P(PrefixAdderCorrectness, MatchesIntegerAddition) {
  const auto& param = GetParam();
  const Aig g = param.build(param.width);
  ASSERT_EQ(g.numInputs(), 2 * param.width);
  ASSERT_EQ(g.numOutputs(), param.width + 1);
  const std::uint64_t mask = (1ULL << param.width) - 1;
  Rng rng(41);
  auto check = [&](std::uint64_t a, std::uint64_t b) {
    std::vector<bool> in = toBits(a, param.width);
    const auto bBits = toBits(b, param.width);
    in.insert(in.end(), bBits.begin(), bBits.end());
    const auto out = g.evaluate(in);
    const std::uint64_t expected = a + b;
    ASSERT_EQ(fromBits(out, 0, param.width), expected & mask)
        << param.name << ": " << a << "+" << b;
    ASSERT_EQ(out[param.width], ((expected >> param.width) & 1) != 0);
  };
  if (param.width <= 4) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) check(a, b);
    }
  } else {
    // Corner cases plus random samples.
    const std::uint64_t corners[] = {0, 1, mask, mask - 1};
    for (const std::uint64_t a : corners) {
      for (const std::uint64_t b : corners) check(a, b);
    }
    for (int i = 0; i < 300; ++i) {
      check(rng.next64() & mask, rng.next64() & mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PrefixAdderCorrectness,
    testing::Values(PrefixCase{"ks1", koggeStoneAdder, 1},
                    PrefixCase{"ks2", koggeStoneAdder, 2},
                    PrefixCase{"ks4", koggeStoneAdder, 4},
                    PrefixCase{"ks13", koggeStoneAdder, 13},
                    PrefixCase{"ks32", koggeStoneAdder, 32},
                    PrefixCase{"sk1", sklanskyAdder, 1},
                    PrefixCase{"sk4", sklanskyAdder, 4},
                    PrefixCase{"sk16", sklanskyAdder, 16},
                    PrefixCase{"sk21", sklanskyAdder, 21},
                    PrefixCase{"bk1", brentKungAdder, 1},
                    PrefixCase{"bk2", brentKungAdder, 2},
                    PrefixCase{"bk4", brentKungAdder, 4},
                    PrefixCase{"bk15", brentKungAdder, 15},
                    PrefixCase{"bk32", brentKungAdder, 32}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(CarrySaveMultiplier, MatchesIntegerMultiplication) {
  for (std::uint32_t width : {2u, 3u, 7u}) {
    const Aig g = carrySaveMultiplier(width);
    ASSERT_EQ(g.numOutputs(), 2 * width);
    const std::uint64_t mask = (1ULL << width) - 1;
    Rng rng(42);
    const int samples = width <= 3 ? -1 : 200;
    auto check = [&](std::uint64_t a, std::uint64_t b) {
      std::vector<bool> in = toBits(a, width);
      const auto bBits = toBits(b, width);
      in.insert(in.end(), bBits.begin(), bBits.end());
      ASSERT_EQ(fromBits(g.evaluate(in), 0, 2 * width), a * b)
          << a << "*" << b;
    };
    if (samples < 0) {
      for (std::uint64_t a = 0; a <= mask; ++a) {
        for (std::uint64_t b = 0; b <= mask; ++b) check(a, b);
      }
    } else {
      for (int i = 0; i < samples; ++i) {
        check(rng.next64() & mask, rng.next64() & mask);
      }
    }
  }
}

TEST(PrefixAdders, DepthOrdering) {
  // Kogge-Stone and Sklansky are log-depth; ripple is linear.
  const std::uint32_t w = 32;
  const Aig ks = koggeStoneAdder(w);
  const Aig sk = sklanskyAdder(w);
  const Aig rc = rippleCarryAdder(w);
  EXPECT_LT(ks.depth(), rc.depth() / 2);
  EXPECT_LT(sk.depth(), rc.depth() / 2);
}

TEST(PrefixAdders, CrossFamilyCertifiedEquivalence) {
  const std::uint32_t w = 12;
  const Aig families[] = {koggeStoneAdder(w), sklanskyAdder(w),
                          brentKungAdder(w), rippleCarryAdder(w)};
  for (std::size_t i = 0; i + 1 < std::size(families); ++i) {
    const Aig miter = cec::buildMiter(families[i], families[i + 1]);
    const cec::CertifyReport report = cec::checkMiter(miter);
    ASSERT_EQ(report.cec.verdict, cec::Verdict::kEquivalent) << i;
    EXPECT_TRUE(report.proofChecked) << report.check.error;
  }
}

TEST(PrefixAdders, CarrySaveVsWallaceCertified) {
  const Aig miter =
      cec::buildMiter(carrySaveMultiplier(4), wallaceMultiplier(4));
  const cec::CertifyReport report = cec::checkMiter(miter);
  ASSERT_EQ(report.cec.verdict, cec::Verdict::kEquivalent);
  EXPECT_TRUE(report.proofChecked) << report.check.error;
}

}  // namespace
}  // namespace cp::gen
